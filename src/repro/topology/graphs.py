"""Generators and utilities for the cluster-level graph ``G = (C, E)``.

These are plain adjacency-list graphs over cluster ids ``0..n-1``.  The
paper's construction (Section 2) then replaces each cluster by a
``k``-clique — see :mod:`repro.topology.cluster_graph`.
"""

from __future__ import annotations

import random
from collections import deque

from repro.errors import TopologyError


def normalize_edges(num_vertices: int,
                    edges: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Validate and canonicalize an undirected edge list.

    Each edge is returned as ``(min, max)``; duplicates and self-loops
    raise :class:`TopologyError`.
    """
    seen: set[tuple[int, int]] = set()
    result: list[tuple[int, int]] = []
    for a, b in edges:
        if not (0 <= a < num_vertices and 0 <= b < num_vertices):
            raise TopologyError(
                f"edge ({a!r}, {b!r}) references a vertex outside "
                f"0..{num_vertices - 1}")
        if a == b:
            raise TopologyError(f"self-loop at vertex {a!r}")
        edge = (a, b) if a < b else (b, a)
        if edge in seen:
            raise TopologyError(f"duplicate edge {edge!r}")
        seen.add(edge)
        result.append(edge)
    return result


def adjacency_from_edges(num_vertices: int,
                         edges: list[tuple[int, int]]
                         ) -> list[list[int]]:
    """Build sorted adjacency lists from a canonical edge list."""
    adjacency: list[list[int]] = [[] for _ in range(num_vertices)]
    for a, b in edges:
        adjacency[a].append(b)
        adjacency[b].append(a)
    for neighbors in adjacency:
        neighbors.sort()
    return adjacency


def bfs_distances(adjacency: list[list[int]], source: int) -> list[int]:
    """Hop distances from ``source``; unreachable vertices get -1."""
    dist = [-1] * len(adjacency)
    dist[source] = 0
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for w in adjacency[v]:
            if dist[w] < 0:
                dist[w] = dist[v] + 1
                queue.append(w)
    return dist


def hop_diameter(adjacency: list[list[int]]) -> int:
    """Exact hop diameter (max over all-pairs shortest paths).

    Raises :class:`TopologyError` if the graph is disconnected, since a
    diameter is then undefined.
    """
    best = 0
    for source in range(len(adjacency)):
        dist = bfs_distances(adjacency, source)
        worst = max(dist)
        if min(dist) < 0:
            raise TopologyError("graph is disconnected")
        best = max(best, worst)
    return best


def is_connected(adjacency: list[list[int]]) -> bool:
    if not adjacency:
        return True
    return min(bfs_distances(adjacency, 0)) >= 0


# ----------------------------------------------------------------------
# Standard topologies (edge lists over 0..n-1)
# ----------------------------------------------------------------------

def line_edges(n: int) -> list[tuple[int, int]]:
    """Path on ``n`` vertices; diameter ``n - 1``."""
    if n < 1:
        raise TopologyError(f"need n >= 1: {n!r}")
    return [(i, i + 1) for i in range(n - 1)]


def ring_edges(n: int) -> list[tuple[int, int]]:
    """Cycle on ``n >= 3`` vertices; diameter ``n // 2``."""
    if n < 3:
        raise TopologyError(f"need n >= 3 for a ring: {n!r}")
    return [(i, (i + 1) % n) for i in range(n)]


def complete_edges(n: int) -> list[tuple[int, int]]:
    """Clique on ``n`` vertices; diameter 1 (or 0 for n=1)."""
    if n < 1:
        raise TopologyError(f"need n >= 1: {n!r}")
    return [(i, j) for i in range(n) for j in range(i + 1, n)]


def star_edges(n: int) -> list[tuple[int, int]]:
    """Star with center 0 and ``n - 1`` leaves; diameter 2."""
    if n < 2:
        raise TopologyError(f"need n >= 2 for a star: {n!r}")
    return [(0, i) for i in range(1, n)]


def grid_edges(width: int, height: int) -> list[tuple[int, int]]:
    """``width x height`` mesh; vertex ``(x, y)`` has id ``y*width + x``."""
    if width < 1 or height < 1:
        raise TopologyError("grid dimensions must be positive")
    edges: list[tuple[int, int]] = []
    for y in range(height):
        for x in range(width):
            v = y * width + x
            if x + 1 < width:
                edges.append((v, v + 1))
            if y + 1 < height:
                edges.append((v, v + width))
    return edges


def torus_edges(width: int, height: int) -> list[tuple[int, int]]:
    """``width x height`` torus (wrap-around mesh)."""
    if width < 3 or height < 3:
        raise TopologyError("torus dimensions must be >= 3 to avoid "
                            "duplicate wrap edges")
    edges: list[tuple[int, int]] = []
    for y in range(height):
        for x in range(width):
            v = y * width + x
            right = y * width + (x + 1) % width
            down = ((y + 1) % height) * width + x
            edges.append((min(v, right), max(v, right)))
            edges.append((min(v, down), max(v, down)))
    return normalize_edges(width * height, edges)


def balanced_tree_edges(branching: int, height: int) -> list[tuple[int, int]]:
    """Rooted balanced tree; node 0 is the root."""
    if branching < 1 or height < 0:
        raise TopologyError("need branching >= 1 and height >= 0")
    edges: list[tuple[int, int]] = []
    next_id = 1
    frontier = [0]
    for _ in range(height):
        new_frontier = []
        for parent in frontier:
            for _ in range(branching):
                edges.append((parent, next_id))
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    return edges


def caterpillar_edges(length: int, width: int) -> list[tuple[int, int]]:
    """Caterpillar: a spine path of ``length`` hubs, each carrying
    ``width - 1`` leaves; ``length * width`` vertices total.

    Hub ``i`` has id ``i * width``; its leaves occupy the rest of the
    block ``[i * width, (i + 1) * width)``.  The hop diameter is
    ``length + 1`` for ``width >= 2`` (leaf -> spine -> ... -> leaf)
    and ``length - 1`` for ``width == 1`` (a plain path) — the shape
    that decouples vertex count from diameter, so scale sweeps can fix
    ``D`` while pushing ``n`` to 1e5-1e6.
    """
    if length < 1 or width < 1:
        raise TopologyError("caterpillar dimensions must be positive")
    edges: list[tuple[int, int]] = []
    for i in range(length):
        hub = i * width
        if i + 1 < length:
            edges.append((hub, hub + width))
        for leaf in range(hub + 1, hub + width):
            edges.append((hub, leaf))
    return edges


def hypercube_edges(dim: int) -> list[tuple[int, int]]:
    """``dim``-dimensional hypercube on ``2**dim`` vertices."""
    if dim < 1:
        raise TopologyError(f"need dim >= 1: {dim!r}")
    n = 1 << dim
    edges = []
    for v in range(n):
        for bit in range(dim):
            w = v ^ (1 << bit)
            if v < w:
                edges.append((v, w))
    return edges


def random_connected_edges(n: int, extra_edge_prob: float,
                           rng: random.Random) -> list[tuple[int, int]]:
    """A random connected graph: random spanning tree plus G(n, p) extras.

    The spanning tree is built by attaching each vertex ``i >= 1`` to a
    uniformly random earlier vertex, which samples trees with good
    degree spread; extra edges are then added independently.
    """
    if n < 1:
        raise TopologyError(f"need n >= 1: {n!r}")
    if not 0 <= extra_edge_prob <= 1:
        raise TopologyError(
            f"probability out of range: {extra_edge_prob!r}")
    edges: set[tuple[int, int]] = set()
    for i in range(1, n):
        j = rng.randrange(i)
        edges.add((j, i))
    for i in range(n):
        for j in range(i + 1, n):
            if (i, j) not in edges and rng.random() < extra_edge_prob:
                edges.add((i, j))
    return sorted(edges)
