"""The global-skew estimate ``M_v`` (Lemma C.2).

Every node maintains a conservative estimate of the maximum logical
clock in the system:

* ``M_v`` increases at rate ``h_v / (1 + rho) <= 1``, so it can never
  overtake the true maximum (which increases at rate ``>= 1``);
* whenever ``M_v`` crosses a multiple of the *level unit*, the node
  broadcasts a MAX pulse (a channel distinguishable from sync pulses);
* a node that has registered level-``k`` pulses from ``f + 1`` distinct
  members of any single cluster knows at least one *correct* node had
  ``M >= k * unit`` at send time; messages travel ``>= d - U``, so it
  may raise its own estimate to ``(k + 1) * unit`` — Lemma C.2's rule —
  and then emits its own pulses for all levels it has now reached,
  producing a fault-tolerant flood.

The paper uses ``unit = d - U`` and notes it makes "no attempt to keep
the message complexity low"; with round lengths of order ``c1 * E``
that is millions of pulses per round in simulation.  The unit is
therefore configurable (default ``delta_trigger``): a coarser unit
only adds ``O(unit)`` to the estimate lag, leaving the ``O(delta * D)``
global bound intact while keeping message counts sane.  Setting
``unit = d - U`` reproduces the letter of the paper.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.clocks.hardware import HardwareClock
from repro.clocks.logical import ScaledClock
from repro.errors import ConfigError
from repro.sim.kernel import Simulator


class MaxEstimate:
    """One node's ``M_v`` state machine.

    Parameters
    ----------
    sim, hardware:
        Kernel and the owner's hardware clock.
    rho:
        Drift bound; the estimate advances at ``h_v / (1 + rho)``.
    unit:
        Level granularity (see module docstring).
    f:
        Per-cluster fault bound; ``f + 1`` same-cluster witnesses are
        needed to accept a level.
    cluster_of:
        Maps a sender node id to its cluster id.
    initial_value:
        ``M_v(0)``; a node's own initial logical clock is always a
        safe choice.
    send_pulse:
        Callback broadcasting one MAX pulse to all neighbors.
    """

    def __init__(self, sim: Simulator, hardware: HardwareClock,
                 rho: float, unit: float, f: int,
                 cluster_of: dict[int, int], initial_value: float,
                 send_pulse: Callable[[], None],
                 transit_bonus: float = 0.0,
                 name: str = "") -> None:
        if unit <= 0:
            raise ConfigError(f"max-estimate unit must be positive: {unit!r}")
        if transit_bonus < 0:
            raise ConfigError(
                f"transit_bonus must be non-negative: {transit_bonus!r}")
        self._sim = sim
        self._unit = unit
        self._transit_bonus = transit_bonus
        self._f = f
        self._cluster_of = dict(cluster_of)
        self._send_pulse = send_pulse
        self.name = name
        self._clock = ScaledClock(sim, hardware, scale=1.0 / (1.0 + rho),
                                  initial_value=initial_value,
                                  name=name or "max-estimate")
        # Levels already announced by us; we announce every level we
        # reach, whether by local progress or by a flood-induced jump.
        # Receivers decode "k-th pulse from sender" as "sender reached
        # level k", so announcements must start at level 1 even when a
        # node's clock starts negative (a lagging initial offset) —
        # otherwise receivers would overestimate M and break its
        # "never exceeds the true maximum" invariant.
        self._announced_level = max(0, self._level_of(initial_value))
        #: per-sender highest pulse count == highest announced level.
        self._sender_levels: dict[int, int] = {}
        #: per-sender quarantine deadline after a decode reset: pulses
        #: *arriving* before it may have been in flight from before
        #: the link outage and are dropped (see :meth:`reset_sender`).
        self._quarantine: dict[int, float] = {}
        self.pulses_sent = 0
        self.pulses_received = 0
        self.jumps = 0
        self.sender_resets = 0
        self.quarantined_pulses = 0
        self._running = False

    # ------------------------------------------------------------------

    def _level_of(self, value: float) -> int:
        return int(math.floor(value / self._unit + 1e-12))

    def value(self, t: float | None = None) -> float:
        """Current estimate ``M_v(t)``."""
        return self._clock.value(t)

    def observe_own(self, logical_value: float) -> None:
        """Fold the owner's logical clock into the estimate.

        ``L_v <= L_max`` always, so the own clock is sound evidence;
        Lemma C.2's proof uses ``M_w >= L_w`` implicitly.  Without this
        the estimate falls behind by ``(phi + mu) * t`` because logical
        clocks advance at ``(1+phi)``-ish rates while the conservative
        internal clock advances at ``h/(1+rho) <= 1``.
        """
        if self._clock.jump_to(logical_value):
            self._announce_up_to(self._level_of(self.value()))

    @property
    def announced_level(self) -> int:
        """Highest level this node has announced so far (the number of
        MAX pulses a fully-connected receiver has seen from it)."""
        return self._announced_level

    def reset_sender(self, sender: int,
                     quarantine_until: float | None = None) -> None:
        """First-contact (re)initialization of one sender's decode.

        The count-based decode ("k-th pulse from ``sender`` means
        ``sender`` reached level k") only holds if every pulse since
        the sender's level 1 was received.  When a link (re)appears
        under a dynamic topology, that premise is re-established by a
        *paired* protocol: the receiver resets the sender's count here,
        and the sender re-announces its current level over the fresh
        link (see :class:`~repro.core.node.FtgcsNode`); the decode then
        reads exactly the re-announced level.  If the re-announcement
        is capped (or lost), the decode *under*-estimates — which keeps
        the ``M <= true maximum`` invariant intact.

        ``quarantine_until`` closes the one over-count hole: a pulse
        still in flight from *before* the outage would add to the
        fresh count on top of the re-announcement.  Pulses from
        ``sender`` **arriving** before the deadline are dropped
        (counted in ``quarantined_pulses``); the caller sets the
        deadline to ``now + d`` — every pre-outage pulse left the
        sender before the link came back up, so it delivers strictly
        before ``now + d``, while the re-announcement is delayed by
        ``U`` so its copies arrive at or after it.  Dropping can only
        under-count, the sound direction.
        """
        self._sender_levels.pop(sender, None)
        if quarantine_until is not None:
            self._quarantine[sender] = quarantine_until
        self.sender_resets += 1

    def start(self) -> None:
        if self._running:
            raise ConfigError(f"{self.name}: already started")
        self._running = True
        self._arm_next_level()

    def stop(self) -> None:
        self._running = False

    def _arm_next_level(self) -> None:
        next_level = self._announced_level + 1
        self._clock.at_value(next_level * self._unit,
                             self._on_level_reached, next_level)

    def _on_level_reached(self, level: int) -> None:
        if not self._running:
            return
        # A jump may have carried us past several levels; announce all.
        self._announce_up_to(max(level, self._level_of(self.value())))
        self._arm_next_level()

    def _announce_up_to(self, level: int) -> None:
        while self._announced_level < level:
            self._announced_level += 1
            self.pulses_sent += 1
            self._send_pulse()

    # ------------------------------------------------------------------

    def on_pulse(self, sender: int, receive_time: float) -> None:
        """Process one received MAX pulse."""
        if not self._running:
            return
        self.pulses_received += 1
        if self._quarantine:
            until = self._quarantine.get(sender)
            if until is not None:
                if receive_time < until:
                    # Possibly in flight from before the outage; the
                    # decode must not count it (see reset_sender).
                    self.quarantined_pulses += 1
                    return
                del self._quarantine[sender]
        level = self._sender_levels.get(sender, 0) + 1
        self._sender_levels[sender] = level
        confirmed = self._confirmed_level(self._cluster_of.get(sender))
        if confirmed <= 0:
            return
        # A correct witness had M >= confirmed * unit at send time, and
        # the message spent at least d - U in flight (the paper's "+1"
        # with unit = d - U is exactly this transit bonus).
        target = confirmed * self._unit + self._transit_bonus
        if self._clock.jump_to(target):
            self.jumps += 1
            self._announce_up_to(self._level_of(self.value()))

    def _confirmed_level(self, cluster: int | None) -> int:
        """Highest level attested by ``f + 1`` members of ``cluster``."""
        if cluster is None:
            return 0
        levels = sorted(
            (lvl for sender, lvl in self._sender_levels.items()
             if self._cluster_of.get(sender) == cluster),
            reverse=True)
        if len(levels) <= self._f:
            return 0
        return levels[self._f]
