"""System assembly: build and run a complete FTGCS deployment.

:class:`FtgcsSystem` wires everything together from a cluster graph and
a parameter set: the kernel, per-node hardware clocks, the network over
the augmented graph, honest :class:`~repro.core.node.FtgcsNode`
instances, Byzantine strategy drivers, and a skew sampler.  It is the
entry point used by the examples and the benchmark harness:

>>> from repro import ClusterGraph, Parameters
>>> from repro.core.system import FtgcsSystem
>>> params = Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1)
>>> system = FtgcsSystem.build(ClusterGraph.line(3), params, seed=1)
>>> result = system.run_rounds(10)
>>> result.max_intra_cluster_skew <= result.bounds.intra_cluster_bound
True
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.bounds import BoundsReport
from repro.analysis.metrics import (
    SkewSnapshot,
    pulse_diameters,
    stabilization_time,
    unanimity_by_round,
)
from repro.analysis.sampling import SkewSampler
from repro.clocks.hardware import HardwareClock
from repro.clocks.rate_models import ConstantRate, FlipRate, RateModel
from repro.core.node import (
    MAX_REANNOUNCE_LEVELS,
    FtgcsNode,
    MaxEstimateConfig,
)
from repro.core.params import Parameters
from repro.core.rounds import RoundSchedule
from repro.errors import ConfigError
from repro.faults.strategies import ByzantineStrategy, StrategyContext
from repro.net.delays import DelayModel, ExtremalDelay, UniformDelay
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.topology.cluster_graph import AugmentedGraph, ClusterGraph

#: ``(node_id, rng, params) -> RateModel`` for custom drift trajectories.
RateModelFactory = Callable[[int, random.Random, Parameters], RateModel]
#: ``(a, b, rng, params) -> DelayModel`` for custom link delays.
DelayModelFactory = Callable[[int, int, random.Random, Parameters],
                             DelayModel]


@dataclass
class SystemConfig:
    """Scenario knobs for :meth:`FtgcsSystem.build`.

    Attributes
    ----------
    policy:
        Mode policy (see :mod:`repro.core.intercluster`).
    rate_model:
        ``"uniform"`` (constant per-node rate drawn from ``[1, 1+rho]``),
        ``"extremes"`` (alternate 1 / 1+rho by node id — the worst
        static spread), ``"min"``/``"max"`` (all nodes pinned), ``"flip"``
        (drift pump alternating extremes), or a
        :data:`RateModelFactory`.
    delay_model:
        ``"uniform"`` (i.i.d. per message), ``"min"``/``"max"``
        (envelope edges), or a :data:`DelayModelFactory`.
    cluster_offsets:
        Initial logical offset per cluster (defaults to all zero).
        These set up skew gradients for convergence experiments.
    init_jitter:
        Half-width of per-node initial offsets around the cluster base
        (default ``E / 4``; initialization must respect ``e(1)``).
    byzantine:
        ``{node_id: strategy}`` — see :mod:`repro.faults`.
    allow_fault_overflow:
        Permit more than ``f`` faults in a cluster (for "what breaks
        beyond the bound" experiments).
    enable_max_estimate / max_estimate_unit:
        Theorem C.3 machinery; the unit defaults to ``delta_trigger``
        (see :mod:`repro.core.max_estimate` for the rationale).
    dynamic_estimators:
        First-contact estimator bring-up for dynamic topologies (see
        :mod:`repro.core.node`): estimators follow the live edge set —
        dormant while their link is down at start, brought up on first
        contact, resynced on re-contact, and gated by the warm-up rule
        (one completed exchange) before entering the trigger
        aggregation.  Off by default: static runs and legacy dynamic
        runs are bit-identical to the frozen-estimator implementation.
    max_reannounce_levels:
        Cap on MAX pulses re-sent per neighbor at link bring-up
        (dynamic mode).  A binding cap makes the receiver's decode an
        *under*-estimate — sound, but lossy on long outages; every
        capped re-announcement is counted in
        ``RunResult.reannounce_cap_hits`` so the cap can be sized.
    batched_delivery:
        Deliver messages through the network's batched fast path (one
        kernel wake-up per batch instead of one event per message; see
        :mod:`repro.net.network`).  On by default — handler execution
        order, and therefore every measurement, is bit-identical
        either way; ``False`` restores the legacy per-message event
        stream for A/B benchmarking.
    e1:
        Initial error bound for loose-initialization runs (adaptive
        round schedule); default: steady state ``E``.
    sample_interval:
        Skew sampling period (default: a quarter round).
    record_series / track_edges / record_rounds:
        Measurement verbosity.
    """

    policy: str = "slow_default"
    rate_model: str | RateModelFactory = "uniform"
    delay_model: str | DelayModelFactory = "uniform"
    cluster_offsets: list[float] | None = None
    init_jitter: float | None = None
    byzantine: dict[int, ByzantineStrategy] = field(default_factory=dict)
    allow_fault_overflow: bool = False
    enable_max_estimate: bool = False
    max_estimate_unit: float | None = None
    dynamic_estimators: bool = False
    max_reannounce_levels: int = MAX_REANNOUNCE_LEVELS
    batched_delivery: bool = True
    e1: float | None = None
    sample_interval: float | None = None
    record_series: bool = False
    track_edges: bool = False
    record_rounds: bool = True


@dataclass
class RunResult:
    """Measurements and bound comparisons of one run."""

    params: Parameters
    diameter: int
    rounds_completed: int
    max_global_skew: float
    max_intra_cluster_skew: float
    max_local_cluster_skew: float
    max_local_node_skew: float
    max_estimate_error: float
    bounds: BoundsReport
    samples: int
    messages_sent: int
    events_processed: int
    missing_pulses: int
    clamped_corrections: int
    stale_pulses: int
    flooded_pulses: int
    both_triggers_rounds: int
    fast_rounds: int
    slow_rounds: int
    #: First-contact machinery counters (0 unless dynamic_estimators).
    estimator_bring_ups: int = 0
    estimator_resyncs: int = 0
    #: Re-announcements truncated by ``max_reannounce_levels`` (the
    #: undercount stays sound; nonzero means the cap was binding).
    reannounce_cap_hits: int = 0
    #: Fault-injection accounting (all 0 / None on clean runs):
    #: messages eaten by the loss model, messages dropped on down
    #: links, cluster crash / rejoin-with-amnesia events, and the time
    #: the local-skew series settles into its steady band (``None``
    #: without a recorded series).
    messages_lost: int = 0
    dropped_link_down: int = 0
    node_crashes: int = 0
    node_rejoins: int = 0
    stabilization_time: float | None = None
    series: list[SkewSnapshot] = field(default_factory=list)
    edge_maxima: dict[tuple[int, int], float] = field(default_factory=dict)

    @property
    def within_intra_bound(self) -> bool:
        return (self.max_intra_cluster_skew
                <= self.bounds.intra_cluster_bound)

    @property
    def within_local_cluster_bound(self) -> bool:
        return (self.max_local_cluster_skew
                <= self.bounds.local_skew_bound)

    @property
    def within_local_node_bound(self) -> bool:
        return (self.max_local_node_skew
                <= self.bounds.node_local_skew_bound)

    @property
    def within_global_bound(self) -> bool:
        return self.max_global_skew <= self.bounds.global_skew_bound

    @property
    def all_bounds_hold(self) -> bool:
        return (self.within_intra_bound
                and self.within_local_cluster_bound
                and self.within_local_node_bound
                and self.within_global_bound)

    def report(self) -> str:
        """Human-readable measured-vs-bound summary of the run."""
        rows = [
            ("intra-cluster skew", self.max_intra_cluster_skew,
             self.bounds.intra_cluster_bound, self.within_intra_bound),
            ("local cluster skew", self.max_local_cluster_skew,
             self.bounds.local_skew_bound,
             self.within_local_cluster_bound),
            ("local node skew", self.max_local_node_skew,
             self.bounds.node_local_skew_bound,
             self.within_local_node_bound),
            ("global skew", self.max_global_skew,
             self.bounds.global_skew_bound, self.within_global_bound),
            ("estimate error", self.max_estimate_error,
             self.bounds.estimate_error_bound,
             self.max_estimate_error
             <= self.bounds.estimate_error_bound),
        ]
        lines = [f"run over {self.rounds_completed} rounds "
                 f"(D={self.diameter}, {self.messages_sent} messages, "
                 f"{self.events_processed} events)"]
        for name, measured, bound, ok in rows:
            status = "ok" if ok else "VIOLATED"
            lines.append(f"  {name:20s} {measured:12.4f} <= "
                         f"{bound:12.4f}  {status}")
        lines.append(f"  improper rounds: {self.clamped_corrections}, "
                     f"missing pulses: {self.missing_pulses}, "
                     f"stale: {self.stale_pulses}, "
                     f"flooded: {self.flooded_pulses}")
        return "\n".join(lines)


class FtgcsSystem:
    """A fully wired FTGCS deployment on one simulation kernel."""

    def __init__(self, cluster_graph: ClusterGraph, params: Parameters,
                 config: SystemConfig, seed: int) -> None:
        """Use :meth:`build`; the constructor wires but does not start."""
        self.cluster_graph = cluster_graph
        self.params = params
        self.config = config
        self.graph: AugmentedGraph = cluster_graph.augment(
            params.cluster_size)
        self.sim = Simulator()
        self.rng = RngRegistry(seed)
        self.schedule = RoundSchedule(params, e1=config.e1)
        self._diameter = (cluster_graph.diameter()
                          if cluster_graph.is_connected() else -1)

        self.faulty_ids = frozenset(config.byzantine)
        self._validate_faults()

        self.network = self._build_network()
        self._bases = self._compute_bases()
        self.nodes: dict[int, FtgcsNode] = {}
        self.drivers: dict[int, object] = {}
        self.pulse_log: dict[tuple[int, int], list[tuple[int, float]]] = {}
        self._build_nodes()
        self._build_sample_layout()

        interval = config.sample_interval
        if interval is None:
            interval = self.schedule.round_length(1) / 4.0
        self.sampler = SkewSampler(
            self.sim, interval, self._collect_grouped,
            cluster_graph.edges, record_series=config.record_series,
            track_edges=config.track_edges)
        self._started = False
        #: Cluster-level churn events applied to this system.
        self.node_crashes = 0
        self.node_rejoins = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, cluster_graph: ClusterGraph, params: Parameters,
              seed: int = 0,
              config: SystemConfig | None = None) -> "FtgcsSystem":
        """Build a system ready to :meth:`run`."""
        return cls(cluster_graph, params, config or SystemConfig(), seed)

    def _validate_faults(self) -> None:
        per_cluster: dict[int, int] = {}
        for node_id in self.faulty_ids:
            cluster = self.graph.cluster_of(node_id)
            per_cluster[cluster] = per_cluster.get(cluster, 0) + 1
        if self.config.allow_fault_overflow:
            return
        for cluster, count in per_cluster.items():
            if count > self.params.f:
                raise ConfigError(
                    f"cluster {cluster} has {count} faults, exceeding "
                    f"f={self.params.f} (set allow_fault_overflow to "
                    f"experiment beyond the bound)")

    def _compute_bases(self) -> dict[int, float]:
        offsets = self.config.cluster_offsets
        n = self.cluster_graph.num_clusters
        if offsets is None:
            return {c: 0.0 for c in range(n)}
        if len(offsets) != n:
            raise ConfigError(
                f"cluster_offsets has {len(offsets)} entries for "
                f"{n} clusters")
        return {c: float(offsets[c]) for c in range(n)}

    def _build_network(self) -> Network:
        p = self.params
        net = Network(self.sim, d=p.d, u=p.u,
                      batched=self.config.batched_delivery)
        for node_id in range(self.graph.num_nodes):
            net.add_node(node_id)
        for a, b in self.graph.node_edges():
            net.add_link(a, b, self._delay_model_for(a, b))
        return net

    def _delay_model_for(self, a: int, b: int) -> DelayModel:
        spec = self.config.delay_model
        p = self.params
        rng = self.rng.stream(f"delay/{a}-{b}")
        if callable(spec):
            return spec(a, b, rng, p)
        if spec == "uniform":
            return UniformDelay(p.d, p.u, rng)
        if spec in ("min", "max"):
            return ExtremalDelay(p.d, p.u, spec)
        raise ConfigError(f"unknown delay_model spec: {spec!r}")

    def _rate_model_for(self, node_id: int) -> RateModel:
        spec = self.config.rate_model
        p = self.params
        rng = self.rng.stream(f"rate/{node_id}")
        if callable(spec):
            return spec(node_id, rng, p)
        if spec == "uniform":
            return ConstantRate(1.0 + p.rho * rng.random())
        if spec == "extremes":
            rate = 1.0 + p.rho if node_id % 2 == 0 else 1.0
            return ConstantRate(rate)
        if spec == "min":
            return ConstantRate(1.0)
        if spec == "max":
            return ConstantRate(1.0 + p.rho)
        if spec == "flip":
            period = 4.0 * self.schedule.round_length(1)
            return FlipRate(1.0, 1.0 + p.rho, period,
                            start_high=node_id % 2 == 0)
        raise ConfigError(f"unknown rate_model spec: {spec!r}")

    def _jitter(self, rng: random.Random) -> float:
        width = self.config.init_jitter
        if width is None:
            width = self.params.cap_e / 4.0
        return width * (2.0 * rng.random() - 1.0)

    def _build_nodes(self) -> None:
        p = self.params
        cfg = self.config
        max_cfg = None
        if cfg.enable_max_estimate:
            unit = cfg.max_estimate_unit
            if unit is None:
                unit = p.delta_trigger
            max_cfg = MaxEstimateConfig(unit=unit)

        for node_id in range(self.graph.num_nodes):
            cluster = self.graph.cluster_of(node_id)
            rng = self.rng.stream(f"node/{node_id}")
            strategy = cfg.byzantine.get(node_id)

            rate_model: RateModel
            enforce = True
            if strategy is not None:
                spec = strategy.hardware_spec(p, rng)
                if spec is not None:
                    rate_model, enforce = spec
                else:
                    rate_model = self._rate_model_for(node_id)
            else:
                rate_model = self._rate_model_for(node_id)
            hardware = HardwareClock(self.sim, rate_model, p.rho,
                                     enforce_bounds=enforce,
                                     name=f"H[{node_id}]")

            members = self.graph.members(cluster)
            adjacent = self.graph.inter_neighbors(node_id)
            ctx = StrategyContext(
                node_id=node_id, cluster_id=cluster, sim=self.sim,
                network=self.network, params=p, schedule=self.schedule,
                hardware=hardware, base=self._bases[cluster],
                cluster_members=members, adjacent_members=adjacent,
                rng=rng)

            if strategy is not None and not strategy.wants_honest_node:
                self.drivers[node_id] = strategy.build(ctx)
                continue

            is_faulty = strategy is not None
            estimator_initials = {
                b: self._bases[b] + self._jitter(rng)
                for b in adjacent}
            node = FtgcsNode(
                node_id, cluster, sim=self.sim, network=self.network,
                params=p, schedule=self.schedule, hardware=hardware,
                cluster_members=members, adjacent_members=adjacent,
                bases=self._bases,
                initial_logical=self._bases[cluster] + self._jitter(rng),
                estimator_initials=estimator_initials, rng=rng,
                policy=cfg.policy, max_estimate=max_cfg,
                record_rounds=cfg.record_rounds and not is_faulty,
                dynamic_estimators=cfg.dynamic_estimators,
                max_reannounce_levels=cfg.max_reannounce_levels,
                on_pulse_sent=None if is_faulty else self._log_pulse)
            self.nodes[node_id] = node
            if is_faulty:
                ctx.honest_node = node
                self.drivers[node_id] = strategy.build(ctx)

    def _build_sample_layout(self) -> None:
        """Precompute the sampling hot path's data layout.

        The honest-node list, the per-cluster grouping, the bound
        ``logical.value`` getters, and the flat per-cluster value
        buffers are built once at construction — and rebuilt only on a
        node churn event (:meth:`crash_cluster` /
        :meth:`rejoin_cluster`), so crashed nodes leave the skew
        measurement while they are down.  Static runs build exactly
        once; every sample then only refills the preallocated buffers
        in stable (cluster, node id) order.
        """
        self._honest = [node for node_id, node in sorted(self.nodes.items())
                        if node_id not in self.faulty_ids
                        and not node.crashed]
        by_cluster: dict[int, list[FtgcsNode]] = {}
        for node in self._honest:
            by_cluster.setdefault(node.cluster_id, []).append(node)
        self._sample_getters = [
            (cluster, [node.logical.value for node in members],
             [0.0] * len(members))
            for cluster, members in sorted(by_cluster.items())]
        self._sample_groups = [(cluster, buffer)
                               for cluster, _, buffer in
                               self._sample_getters]

    def _log_pulse(self, cluster: int, round_index: int, node: int,
                   time: float) -> None:
        self.pulse_log.setdefault((cluster, round_index), []).append(
            (node, time))

    def notify_cluster_edge(self, edge: tuple[int, int],
                            active: bool) -> None:
        """Forward a topology-schedule edge event to the member nodes.

        This is the first-contact hook: nodes on either side of the
        cluster edge learn that their link set changed and (re)start
        estimators accordingly.  No-op unless the system was built with
        ``dynamic_estimators`` — the legacy frozen-estimator behavior
        stays bit-identical.
        """
        if not self.config.dynamic_estimators:
            return
        a, b = edge
        for node in self.nodes.values():
            if node.cluster_id == a:
                node.set_cluster_link(b, active)
            elif node.cluster_id == b:
                node.set_cluster_link(a, active)

    # ------------------------------------------------------------------
    # Node churn (crash-and-rejoin fault injection)
    # ------------------------------------------------------------------

    def crash_cluster(self, cluster: int) -> None:
        """Crash every correct member node of ``cluster``.

        Each member's engines stop (:meth:`FtgcsNode.crash`) and the
        crashed nodes leave the skew measurement until they rejoin.
        Link deactivation is the caller's job (the protocol adapter
        downs all incident links, optionally quarantining in-flight
        traffic) so that link state and node state cannot disagree.
        Byzantine members have no engine state to stop — their links
        going dark silences them for the outage.
        """
        for node_id in self.graph.members(cluster):
            node = self.nodes.get(node_id)
            if node is not None and not node.crashed:
                node.crash()
        self.node_crashes += 1
        self._build_sample_layout()

    def rejoin_cluster(self, cluster: int) -> None:
        """Rejoin ``cluster``'s crashed members with amnesia.

        Members restart through :meth:`FtgcsNode.rejoin` — round
        engine re-entered at the round their own (drifted) progress
        implies, estimators re-seeded via the first-contact bring-up
        path — and re-enter the skew measurement immediately, so the
        recovery transient is visible in the sampled series.
        """
        for node_id in self.graph.members(cluster):
            node = self.nodes.get(node_id)
            if node is not None and node.crashed:
                node.rejoin()
        self.node_rejoins += 1
        self._build_sample_layout()

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    @property
    def diameter(self) -> int:
        return self._diameter

    def honest_nodes(self) -> list[FtgcsNode]:
        """Correct nodes (excludes every node with a strategy).

        The set is fixed at construction time, so this returns a cached
        list (do not mutate it).
        """
        return self._honest

    def _collect_grouped(self) -> list[tuple[int, list[float]]]:
        """Refill the preallocated per-cluster value buffers (hot path)."""
        for _cluster, getters, buffer in self._sample_getters:
            for i, getter in enumerate(getters):
                buffer[i] = getter()
        return self._sample_groups

    def _collect_values(self) -> dict[int, dict[int, float]]:
        """Nested-dict snapshot of correct clocks (non-hot-path uses)."""
        values: dict[int, dict[int, float]] = {}
        for node in self._honest:
            bucket = values.setdefault(node.cluster_id, {})
            bucket[node.node_id] = node.logical.value()
        return values

    def start(self) -> None:
        """Start all nodes, drivers, and the sampler."""
        if self._started:
            raise ConfigError("system already started")
        self._started = True
        for node in self.nodes.values():
            node.start()
        for driver in self.drivers.values():
            driver.start()
        self.sampler.start()

    def run(self, until: float) -> RunResult:
        """Run (starting if necessary) to absolute time ``until``."""
        if not self._started:
            self.start()
        self.sim.run(until)
        return self.result()

    def run_rounds(self, rounds: int) -> RunResult:
        """Run until every correct node has completed ``rounds``.

        Logical clocks advance at rate >= 1, so a node reaches the end
        of round ``n`` within ``round_start(n+1)`` plus its initial
        jitter of real time.
        """
        if rounds < 1:
            raise ConfigError(f"rounds must be >= 1: {rounds!r}")
        width = self.config.init_jitter
        if width is None:
            width = self.params.cap_e / 4.0
        horizon = self.schedule.round_start(rounds + 1) + width + 1.0
        return self.run(self.sim.now + horizon)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def _max_estimate_error(self) -> float:
        """Largest |estimate - true cluster clock| right now."""
        values = self._collect_values()
        cluster_clocks: dict[int, float] = {}
        for cluster, vals in values.items():
            if vals:
                cluster_clocks[cluster] = 0.5 * (min(vals.values())
                                                 + max(vals.values()))
        worst = 0.0
        for node in self.honest_nodes():
            for b_cluster, estimator in node.estimators.items():
                true_value = cluster_clocks.get(b_cluster)
                if true_value is None:
                    continue
                worst = max(worst,
                            abs(estimator.value() - true_value))
        return worst

    def result(self) -> RunResult:
        """Snapshot the run's measurements into a :class:`RunResult`."""
        self.sampler.sample_now()
        honest = self.honest_nodes()
        rounds_completed = min(
            (node.core.stats.rounds_completed for node in honest),
            default=0)
        missing = sum(n.core.stats.missing_pulses for n in honest)
        clamped = sum(n.core.stats.clamped_corrections for n in honest)
        stale = sum(n.core.stats.stale_pulses for n in honest)
        flooded = sum(n.core.stats.flooded_pulses for n in honest)
        both = sum(n.intercluster.stats.both_triggers_rounds
                   for n in honest)
        fast = sum(n.intercluster.stats.fast_rounds for n in honest)
        slow = sum(n.intercluster.stats.slow_rounds for n in honest)
        maxima = self.sampler.maxima
        bounds = BoundsReport.for_run(self.params, max(self._diameter, 0),
                                      global_skew=maxima.global_skew)
        return RunResult(
            params=self.params, diameter=self._diameter,
            rounds_completed=rounds_completed,
            max_global_skew=maxima.global_skew,
            max_intra_cluster_skew=maxima.intra_cluster,
            max_local_cluster_skew=maxima.local_cluster,
            max_local_node_skew=maxima.local_node,
            max_estimate_error=self._max_estimate_error(),
            bounds=bounds, samples=maxima.samples,
            messages_sent=self.network.messages_sent,
            events_processed=self.sim.events_processed,
            missing_pulses=missing, clamped_corrections=clamped,
            stale_pulses=stale, flooded_pulses=flooded,
            both_triggers_rounds=both, fast_rounds=fast, slow_rounds=slow,
            estimator_bring_ups=sum(n.stats.estimator_bring_ups
                                    for n in honest),
            estimator_resyncs=sum(n.stats.estimator_resyncs
                                  for n in honest),
            reannounce_cap_hits=sum(n.stats.reannounce_cap_hits
                                    for n in honest),
            messages_lost=self.network.dropped_loss,
            dropped_link_down=self.network.dropped_link_down,
            node_crashes=self.node_crashes,
            node_rejoins=self.node_rejoins,
            stabilization_time=(stabilization_time(
                [(s.time, s.max_local_cluster)
                 for s in self.sampler.series])
                if self.sampler.series else None),
            series=self.sampler.series,
            edge_maxima=dict(self.sampler.maxima.edge_maxima))

    # ------------------------------------------------------------------
    # Analysis accessors
    # ------------------------------------------------------------------

    def pulse_diameter_table(self) -> dict[tuple[int, int], float]:
        """``‖p_C(r)‖`` per (cluster, round) from correct pulses."""
        return pulse_diameters(self.pulse_log)

    def cluster_unanimity(self, cluster: int) -> dict[int, tuple[bool, int]]:
        """Per-round unanimity of one cluster's correct members."""
        logs = {node.node_id: node.stats.mode_by_round
                for node in self.honest_nodes()
                if node.cluster_id == cluster}
        return unanimity_by_round(logs)
