"""InterclusterSync — Algorithm 2 plus mode policies.

At the start of each round a node evaluates the fast/slow triggers
(Definitions 4.3/4.4) on its own logical clock and its estimates of the
adjacent cluster clocks, then fixes ``gamma_v`` for the entire round.
Three policies for the "neither trigger fires" case are provided:

* ``"algorithm2"`` — keep the previous mode, exactly as printed in
  Algorithm 2 (which only *changes* gamma when a trigger fires);
* ``"slow_default"`` — run slow unless the fast trigger fires; this is
  the precondition of Lemma C.1 and the default here;
* ``"max_rule"`` — Theorem C.3's full rule: fast trigger wins, then
  slow trigger, then "fast if I lag the global-max estimate ``M_v`` by
  more than ``c_global * delta_trigger``", else slow.  Requires a
  :class:`~repro.core.max_estimate.MaxEstimate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core import triggers
from repro.core.max_estimate import MaxEstimate
from repro.core.params import Parameters
from repro.errors import ConfigError

MODE_POLICIES = ("algorithm2", "slow_default", "max_rule")


@dataclass
class ModeRecord:
    """One per-round mode decision (for faithfulness analysis)."""

    round_index: int
    gamma: int
    fast_trigger: bool
    slow_trigger: bool
    up: float
    down: float


@dataclass
class InterclusterStats:
    """Aggregate mode statistics for one node."""

    fast_rounds: int = 0
    slow_rounds: int = 0
    max_rule_activations: int = 0
    both_triggers_rounds: int = 0  # must stay 0 (Lemma 4.5)
    history: list[ModeRecord] = field(default_factory=list)


class InterclusterSync:
    """Per-node mode controller simulating the GCS algorithm.

    Parameters
    ----------
    params:
        Algorithm parameters (uses ``kappa``, ``delta_trigger``,
        ``c_global``).
    policy:
        One of :data:`MODE_POLICIES`.
    own_value:
        Callable returning the node's logical clock value — the node's
        stand-in for its cluster's clock.
    estimate_values:
        Callable returning ``{cluster_id: estimated clock}`` for all
        adjacent clusters.
    max_estimate:
        Required for ``policy="max_rule"``.
    record_history:
        Keep a full :class:`ModeRecord` log.
    """

    def __init__(self, params: Parameters, policy: str,
                 own_value: Callable[[], float],
                 estimate_values: Callable[[], dict[int, float]],
                 max_estimate: MaxEstimate | None = None,
                 record_history: bool = False) -> None:
        if policy not in MODE_POLICIES:
            raise ConfigError(
                f"unknown mode policy {policy!r}; expected one of "
                f"{MODE_POLICIES}")
        if policy == "max_rule" and max_estimate is None:
            raise ConfigError("policy 'max_rule' requires a MaxEstimate")
        self._params = params
        self._policy = policy
        self._own_value = own_value
        self._estimate_values = estimate_values
        self._max_estimate = max_estimate
        self._record_history = record_history
        self._gamma = 0
        self.stats = InterclusterStats()

    @property
    def gamma(self) -> int:
        """The mode chosen for the current round."""
        return self._gamma

    def decide(self, round_index: int) -> int:
        """Evaluate triggers and return the round's ``gamma``."""
        own = self._own_value()
        estimates = self._estimate_values()
        decision = triggers.evaluate(
            own, estimates, self._params.kappa, self._params.delta_trigger)

        if decision.fast and decision.slow:
            # Lemma 4.5 says this cannot happen for slack < 2*kappa;
            # count it so violations surface in experiment reports.
            self.stats.both_triggers_rounds += 1

        if decision.fast:
            gamma = 1
        elif decision.slow:
            gamma = 0
        elif self._policy == "algorithm2":
            gamma = self._gamma
        elif self._policy == "max_rule":
            lag_limit = (self._params.c_global
                         * self._params.delta_trigger)
            if own <= self._max_estimate.value() - lag_limit:
                gamma = 1
                self.stats.max_rule_activations += 1
            else:
                gamma = 0
        else:  # slow_default
            gamma = 0

        self._gamma = gamma
        if gamma == 1:
            self.stats.fast_rounds += 1
        else:
            self.stats.slow_rounds += 1
        if self._record_history:
            self.stats.history.append(ModeRecord(
                round_index=round_index, gamma=gamma,
                fast_trigger=decision.fast, slow_trigger=decision.slow,
                up=decision.up, down=decision.down))
        return gamma
