"""The paper's algorithms: ClusterSync, InterclusterSync, assembly."""

from repro.core.cluster_sync import (
    ClusterSyncCore,
    CoreStats,
    RoundRecord,
)
from repro.core.estimates import ClusterEstimator
from repro.core.intercluster import (
    MODE_POLICIES,
    InterclusterStats,
    InterclusterSync,
    ModeRecord,
)
from repro.core.max_estimate import MaxEstimate
from repro.core.node import FtgcsNode, MaxEstimateConfig, NodeStats
from repro.core.params import Parameters, contraction_factor
from repro.core.protocol import (
    PROTOCOLS,
    BuildContext,
    ProtocolRunResult,
    SyncProtocol,
    System,
    SystemBuilder,
    get_protocol,
    protocol_names,
    register_protocol,
)
from repro.core.rounds import RoundSchedule
from repro.core.system import FtgcsSystem, RunResult, SystemConfig
from repro.core.triggers import TriggerDecision, evaluate

#: Back-compat alias: the active engine is the cluster algorithm node.
ClusterSyncNode = ClusterSyncCore

__all__ = [
    "ClusterSyncCore",
    "ClusterSyncNode",
    "CoreStats",
    "RoundRecord",
    "ClusterEstimator",
    "MODE_POLICIES",
    "InterclusterStats",
    "InterclusterSync",
    "ModeRecord",
    "MaxEstimate",
    "FtgcsNode",
    "MaxEstimateConfig",
    "NodeStats",
    "Parameters",
    "contraction_factor",
    "RoundSchedule",
    "FtgcsSystem",
    "RunResult",
    "SystemConfig",
    "PROTOCOLS",
    "BuildContext",
    "ProtocolRunResult",
    "SyncProtocol",
    "System",
    "SystemBuilder",
    "get_protocol",
    "protocol_names",
    "register_protocol",
    "TriggerDecision",
    "evaluate",
]
