"""Passive cluster-clock estimation (Corollary 3.5).

A node ``w`` adjacent to cluster ``C`` estimates ``C``'s cluster clock
by *simulating* ClusterSync on ``C``'s pulses without transmitting: it
keeps a dedicated estimate clock ``L~_wC`` (driven by ``w``'s own
hardware clock) and runs a passive :class:`~repro.core.cluster_sync.
ClusterSyncCore` over it, listening to all ``k`` members of ``C``.
The engine's approximate-agreement corrections pull the estimate onto
the cluster's pulse schedule each round, so by the paper's analysis
(applied unchanged, with ``w`` as a silent ``k+1``-st member)
``|L~_wC(t) - L_v(t)| <= E`` for every correct ``v in C``.

The estimate clock's ``gamma`` mirrors the *owner's* current mode:
Eq. (2) defines the nominal rate through the owner's own ``gamma_w``,
and any rate in the ``[1, theta_g]`` envelope satisfies the analysis.
"""

from __future__ import annotations

from typing import Callable

from repro.clocks.hardware import HardwareClock
from repro.clocks.logical import LogicalClock
from repro.core.cluster_sync import ClusterSyncCore, CoreStats
from repro.core.rounds import RoundSchedule
from repro.sim.kernel import Simulator


class ClusterEstimator:
    """A node's running estimate ``L~`` of one adjacent cluster clock.

    Parameters
    ----------
    sim, hardware:
        The owner's kernel and hardware clock (the simulation runs on
        the owner's hardware, as in the paper).
    params, schedule:
        Shared algorithm parameters and round schedule.
    cluster_id:
        The tracked cluster (for bookkeeping only).
    member_ids:
        All ``k`` member node ids of the tracked cluster.
    base:
        The tracked cluster's logical base offset.
    initial_value:
        Starting estimate; initialization (Section 2) guarantees this
        is within the invariant envelope of the true cluster clock.
    self_delay:
        Draw for the *simulated* self-reception delay.
    """

    def __init__(self, sim: Simulator, hardware: HardwareClock,
                 params, schedule: RoundSchedule, cluster_id: int,
                 member_ids: tuple[int, ...], base: float,
                 initial_value: float,
                 self_delay: Callable[[], float],
                 name: str = "") -> None:
        self.cluster_id = cluster_id
        self._clock = LogicalClock(
            sim, hardware, phi=params.phi, mu=params.mu,
            delta=1.0, gamma=0, initial_value=initial_value,
            name=name or f"estimate[{cluster_id}]")
        self._core = ClusterSyncCore(
            self._clock, schedule, base, member_ids, params.f,
            self_delay=self_delay, broadcast=None,
            name=name or f"estimator[{cluster_id}]")

    # ------------------------------------------------------------------

    @property
    def clock(self) -> LogicalClock:
        return self._clock

    @property
    def stats(self) -> CoreStats:
        return self._core.stats

    @property
    def current_round(self) -> int:
        return self._core.current_round

    def start(self) -> None:
        self._core.start()

    def stop(self) -> None:
        self._core.stop()

    def value(self, t: float | None = None) -> float:
        """The current estimate ``L~_wC(t)``."""
        return self._clock.value(t)

    def set_gamma(self, gamma: int) -> None:
        """Mirror the owner's mode onto the simulated nominal rate."""
        self._clock.set_gamma(gamma)

    def on_pulse(self, sender: int, receive_time: float) -> None:
        """Feed a pulse received from a member of the tracked cluster."""
        self._core.on_pulse(sender, receive_time)
