"""Passive cluster-clock estimation (Corollary 3.5).

A node ``w`` adjacent to cluster ``C`` estimates ``C``'s cluster clock
by *simulating* ClusterSync on ``C``'s pulses without transmitting: it
keeps a dedicated estimate clock ``L~_wC`` (driven by ``w``'s own
hardware clock) and runs a passive :class:`~repro.core.cluster_sync.
ClusterSyncCore` over it, listening to all ``k`` members of ``C``.
The engine's approximate-agreement corrections pull the estimate onto
the cluster's pulse schedule each round, so by the paper's analysis
(applied unchanged, with ``w`` as a silent ``k+1``-st member)
``|L~_wC(t) - L_v(t)| <= E`` for every correct ``v in C``.

The estimate clock's ``gamma`` mirrors the *owner's* current mode:
Eq. (2) defines the nominal rate through the owner's own ``gamma_w``,
and any rate in the ``[1, theta_g]`` envelope satisfies the analysis.

Dynamic topologies: first contact and warm-up
---------------------------------------------
Under a :class:`~repro.topology.schedule.TopologySchedule` a cluster
edge may be down at time zero or disappear mid-run, so the paper's
assumption that every estimator starts inside the invariant envelope no
longer holds.  Two pieces of machinery (used when the owning system
enables dynamic estimators) close the gap:

* :meth:`ClusterEstimator.bring_up` — a dormant estimator (never
  started because its link was down at time zero) is (re)initialized
  on *first contact*: its estimate clock jumps forward to the owner's
  own logical clock (sound: all correct clocks are within the global
  skew bound, and jumps never move backwards) and its passive engine
  starts at the round the owner's clock implies, so the count-based
  pulse attribution is aligned with the cluster's actual round.
* **warm-up rule** — an estimate enters the trigger min/max
  aggregation only after the first *completed exchange* following its
  last (re)initialization (:attr:`ClusterEstimator.ready`): one round
  boundary must pass in which at least one pulse from the tracked
  cluster was folded into the correction.  Until then the estimate is
  an extrapolated guess and is excluded rather than trusted.
"""

from __future__ import annotations

from typing import Callable

from repro.clocks.hardware import HardwareClock
from repro.clocks.logical import LogicalClock
from repro.core.cluster_sync import ClusterSyncCore, CoreStats
from repro.core.rounds import RoundSchedule
from repro.errors import ConfigError
from repro.sim.kernel import Simulator


class ClusterEstimator:
    """A node's running estimate ``L~`` of one adjacent cluster clock.

    Parameters
    ----------
    sim, hardware:
        The owner's kernel and hardware clock (the simulation runs on
        the owner's hardware, as in the paper).
    params, schedule:
        Shared algorithm parameters and round schedule.
    cluster_id:
        The tracked cluster (for bookkeeping only).
    member_ids:
        All ``k`` member node ids of the tracked cluster.
    base:
        The tracked cluster's logical base offset.
    initial_value:
        Starting estimate; initialization (Section 2) guarantees this
        is within the invariant envelope of the true cluster clock.
    self_delay:
        Draw for the *simulated* self-reception delay.
    """

    def __init__(self, sim: Simulator, hardware: HardwareClock,
                 params, schedule: RoundSchedule, cluster_id: int,
                 member_ids: tuple[int, ...], base: float,
                 initial_value: float,
                 self_delay: Callable[[], float],
                 auto_resync: bool = False,
                 name: str = "") -> None:
        self.cluster_id = cluster_id
        self._clock = LogicalClock(
            sim, hardware, phi=params.phi, mu=params.mu,
            delta=1.0, gamma=0, initial_value=initial_value,
            name=name or f"estimate[{cluster_id}]")
        self._core = ClusterSyncCore(
            self._clock, schedule, base, member_ids, params.f,
            self_delay=self_delay, broadcast=None,
            auto_resync=auto_resync,
            name=name or f"estimator[{cluster_id}]")
        #: Exchange count at the last (re)initialization; the warm-up
        #: rule compares against it (see module docstring).
        self._ready_after = 0
        self.bring_ups = 0
        self.resyncs = 0

    # ------------------------------------------------------------------

    @property
    def clock(self) -> LogicalClock:
        return self._clock

    @property
    def stats(self) -> CoreStats:
        return self._core.stats

    @property
    def current_round(self) -> int:
        return self._core.current_round

    @property
    def running(self) -> bool:
        """Whether the passive engine is armed (dormant estimators —
        link down at time zero under a dynamic schedule — are not)."""
        return self._core.running

    @property
    def ready(self) -> bool:
        """The warm-up rule: has an exchange completed since the last
        (re)initialization?  Only ready estimates may enter the trigger
        min/max aggregation in dynamic-estimator mode."""
        return self._core.stats.exchanges_completed > self._ready_after

    def start(self) -> None:
        self._core.start()

    def stop(self) -> None:
        self._core.stop()

    def bring_up(self, value: float, at_round: int) -> None:
        """First-contact (re)initialization of a dormant estimator.

        Jumps the estimate clock forward to ``value`` (the owner's
        logical clock — jumps never move backwards, so a coasted
        estimate already ahead is left alone), starts the passive
        engine at ``at_round`` with pulse attribution aligned to it,
        and resets the warm-up gate: the estimate re-enters the
        aggregation only after the next completed exchange.
        """
        if self._core.running:
            raise ConfigError(
                f"estimator[{self.cluster_id}]: bring_up on a running "
                f"estimator; use resync() for re-contact")
        self._clock.jump_to(value)
        self._ready_after = self._core.stats.exchanges_completed
        self._core.start(at_round=at_round)
        self.bring_ups += 1

    def resync(self) -> int:
        """Re-contact: re-align pulse attribution after a link outage.

        Fast-forwards lagging per-sender pulse counts to the current
        round (see :meth:`ClusterSyncCore.resync_peers`).  If anything
        was actually lagging — i.e. pulses were missed — the warm-up
        gate resets too, so the stale extrapolated estimate leaves the
        aggregation until one fresh exchange completes.  Returns the
        number of senders re-aligned.
        """
        resynced = self._core.resync_peers()
        if resynced:
            self._ready_after = self._core.stats.exchanges_completed
            self.resyncs += 1
        return resynced

    def value(self, t: float | None = None) -> float:
        """The current estimate ``L~_wC(t)``."""
        return self._clock.value(t)

    def set_gamma(self, gamma: int) -> None:
        """Mirror the owner's mode onto the simulated nominal rate."""
        self._clock.set_gamma(gamma)

    def on_pulse(self, sender: int, receive_time: float) -> None:
        """Feed a pulse received from a member of the tracked cluster."""
        self._core.on_pulse(sender, receive_time)
