"""ClusterSync — Algorithm 1, the amortized Lynch–Welch round engine.

One :class:`ClusterSyncCore` drives one logical clock through the
paper's round structure:

* **Phase 1** (``delta_v = 1``): wait; *pulse* at its end.
* **Phase 2**: collect the cluster's pulses; at its end compute the
  approximate-agreement correction
  ``Delta_v(r) = (S^(f+1) + S^(n-f)) / 2`` over the multiset ``S`` of
  relative arrival times ``tau_wv = L_v(t_wv) - L_v(t_vv)``.
* **Phase 3**: amortize the correction by holding
  ``delta_v = 1 - (1 + 1/phi) * Delta / (tau3 + Delta)``, which by
  Lemma 3.1 makes the nominal round length ``T(r) + Delta_v(r)``.

The same engine serves two roles:

* **active** — a cluster member: it physically broadcasts its pulse
  (via a callback) and listens to its ``k-1`` peers;
* **passive** — Corollary 3.5's observer: a node adjacent to the
  cluster simulates the algorithm on its *estimate clock* without
  transmitting, listening to all ``k`` members.

In both roles the engine's own (possibly simulated) pulse contributes
the sample ``tau_vv = 0`` exactly, because the reference point *is* the
own-pulse reception; the self-reception *time* still matters since it
anchors the other samples, so a self-delay in ``[d-U, d]`` is drawn for
it.

Robustness beyond proper executions (counted in :class:`CoreStats`):

* a peer pulse missing at the end of phase 2 is substituted with the
  latest possible arrival (the phase-2 end itself);
* corrections are clamped to ``|Delta| <= phi * tau3`` (equivalently
  ``delta_v in [0, 2/(1-phi)]``, Lemma B.4) so logical rates always
  respect the GCS axioms, even when a Byzantine majority of samples
  would demand more;
* pulses are attributed to rounds by per-sender arrival order (the
  i-th pulse from ``w`` is ``w``'s round-``i`` pulse) — the only sound
  attribution for contentless pulses; stale or flooded pulses are
  dropped and counted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.clocks.logical import LogicalClock
from repro.core.rounds import RoundSchedule
from repro.errors import ConfigError

#: How many rounds ahead of the local round a pulse may be credited.
#: Honest senders are never more than one round ahead in a proper
#: execution; the extra slack tolerates mild improper intervals without
#: letting a Byzantine flooder allocate unbounded buffers.
MAX_ROUNDS_AHEAD = 2


@dataclass
class RoundRecord:
    """Measurements of one completed round (for analysis)."""

    round_index: int
    gamma: int
    t_start: float
    l_start: float
    t_end: float = float("nan")
    l_end: float = float("nan")
    correction: float = float("nan")
    pulse_time: float = float("nan")

    @property
    def amortized_rate(self) -> float:
        """Mean logical rate over the round (Lemma 3.6's quantity)."""
        return (self.l_end - self.l_start) / (self.t_end - self.t_start)


@dataclass
class CoreStats:
    """Counters describing how cleanly the engine is executing."""

    rounds_completed: int = 0
    pulses_received: int = 0
    missing_pulses: int = 0
    stale_pulses: int = 0
    flooded_pulses: int = 0
    clamped_corrections: int = 0
    self_reference_misses: int = 0
    #: Rounds whose correction saw >= 1 real peer pulse — a completed
    #: *exchange* with the tracked cluster.  The first-contact warm-up
    #: rule keys off this: an estimate only enters the trigger min/max
    #: aggregation once at least one exchange completed after its last
    #: (re)initialization.
    exchanges_completed: int = 0
    #: Per-sender pulse-count fast-forwards after link re-contact.
    peer_resyncs: int = 0
    corrections: list[float] = field(default_factory=list)

    @property
    def improper_rounds(self) -> int:
        """Rounds that violated proper execution (clamped corrections)."""
        return self.clamped_corrections


class ClusterSyncCore:
    """The Algorithm 1 round engine for one (real or simulated) clock.

    Parameters
    ----------
    clock:
        The logical clock this engine controls (sets ``delta_v``).
    schedule:
        Shared round schedule.
    base:
        Logical base of the tracked cluster: round ``r`` starts when
        the clock reads ``base + schedule.round_start(r)``.
    peer_ids:
        Sender ids whose pulses feed the multiset ``S`` (the engine's
        own sample is added implicitly as ``0``).
    f:
        Trim depth: ``f`` lowest and ``f`` highest samples are
        discarded by the midpoint rule.
    self_delay:
        Zero-argument callable drawing the self-reception delay.
    broadcast:
        Called at pulse times to transmit (``None`` for passive mode).
    on_round_start:
        Called as ``on_round_start(r)`` at the start of each round —
        the hook the intercluster layer uses to set ``gamma``.
    record_rounds:
        Keep per-round :class:`RoundRecord` entries (analysis runs).
    """

    def __init__(self, clock: LogicalClock, schedule: RoundSchedule,
                 base: float, peer_ids: tuple[int, ...], f: int, *,
                 self_delay: Callable[[], float],
                 broadcast: Callable[[], None] | None = None,
                 on_round_start: Callable[[int], None] | None = None,
                 on_pulse_sent: Callable[[int, float], None] | None = None,
                 record_rounds: bool = False,
                 auto_resync: bool = False,
                 name: str = "") -> None:
        n_samples = len(peer_ids) + 1
        if n_samples < 3 * f + 1:
            raise ConfigError(
                f"{name or 'core'}: {n_samples} samples cannot tolerate "
                f"f={f} faults (need n >= 3f + 1)")
        if clock.phi <= 0.0:
            raise ConfigError(
                f"{name or 'core'}: ClusterSync requires phi > 0 for "
                f"amortized corrections")
        self._clock = clock
        self._sim = clock.sim
        self._schedule = schedule
        self._base = base
        self._peer_ids = tuple(peer_ids)
        self._f = f
        self._self_delay = self_delay
        self._broadcast = broadcast
        self._on_round_start = on_round_start
        self._on_pulse_sent = on_pulse_sent
        self._record_rounds = record_rounds
        self._auto_resync = auto_resync
        self.name = name

        self.stats = CoreStats()
        self.records: list[RoundRecord] = []
        self._round = 1
        self._pulse_counts: dict[int, int] = {w: 0 for w in peer_ids}
        self._arrivals: dict[int, dict[int, float]] = {}
        self._self_reference: dict[int, float] = {}
        self._alarms: list = []
        self._running = False

    # ------------------------------------------------------------------

    @property
    def clock(self) -> LogicalClock:
        return self._clock

    @property
    def current_round(self) -> int:
        return self._round

    @property
    def base(self) -> float:
        return self._base

    @property
    def running(self) -> bool:
        """Whether the engine is armed (started and not stopped)."""
        return self._running

    def start(self, at_round: int = 1) -> None:
        """Begin at ``at_round`` (default 1).  Call after the owner is
        fully wired.

        ``at_round > 1`` is the *first-contact bring-up* entry point
        for passive estimators joining a cluster mid-run: per-sender
        pulse counts are preset to ``at_round - 1`` so the count-based
        round attribution credits the next received pulse to
        ``at_round`` instead of replaying the missed history as round
        1.  ``at_round=1`` is byte-identical to the historical start.
        """
        if self._running:
            raise ConfigError(f"{self.name}: already started")
        if at_round < 1:
            raise ConfigError(
                f"{self.name}: rounds are 1-based: {at_round!r}")
        self._running = True
        if at_round > 1:
            self._pulse_counts = {w: at_round - 1 for w in self._peer_ids}
        self._begin_round(at_round)

    def resync_peers(self) -> int:
        """Fast-forward lagging per-sender pulse counts to the current
        round (link re-contact support).

        Pulses dropped while a link was down leave the count-based
        round attribution permanently behind: every later pulse would
        be inferred ``(missed pulses)`` rounds stale and discarded
        forever.  Re-contact therefore fast-forwards every count that
        lags the attribution floor.  The floor is round-phase aware:
        before the end of phase 2 of the current round, the current
        round's pulse may still legitimately arrive, so counts are
        only raised to ``current_round - 1``; past phase 2's end every
        honest current-round pulse has either arrived or was dropped,
        so counts are raised to ``current_round`` (a one-round blip —
        down across a pulse, up before the round ends — would
        otherwise lock attribution one round behind forever).  Counts
        already at or past the floor are left alone.  Returns the
        number of senders fast-forwarded.
        """
        floor = self._round - 1
        if (self._clock.value()
                >= self._base + self._schedule.phase2_end_offset(self._round)):
            floor = self._round
        resynced = 0
        for sender, count in self._pulse_counts.items():
            if count < floor:
                self._pulse_counts[sender] = floor
                resynced += 1
        self.stats.peer_resyncs += resynced
        return resynced

    def stop(self) -> None:
        """Cancel all pending activity (crash support)."""
        self._running = False
        for alarm in self._alarms:
            self._clock.cancel_alarm(alarm)
        self._alarms.clear()

    # ------------------------------------------------------------------
    # Round machinery
    # ------------------------------------------------------------------

    def _at(self, offset: float, callback, *args) -> None:
        alarm = self._clock.at_value(self._base + offset, callback, *args)
        self._alarms.append(alarm)

    def _begin_round(self, r: int) -> None:
        self._round = r
        self._clock.set_delta(1.0)
        self._alarms.clear()
        sched = self._schedule
        self._at(sched.pulse_offset(r), self._do_pulse, r)
        self._at(sched.phase2_end_offset(r), self._do_correct, r)
        self._at(sched.round_start(r + 1), self._end_round, r)
        if self._record_rounds:
            self.records.append(RoundRecord(
                round_index=r, gamma=self._clock.gamma,
                t_start=self._sim.now, l_start=self._clock.value()))
        if self._on_round_start is not None:
            self._on_round_start(r)

    def _do_pulse(self, r: int) -> None:
        now = self._sim.now
        if self._broadcast is not None:
            self._broadcast()
        if self._on_pulse_sent is not None:
            self._on_pulse_sent(r, now)
        if self._record_rounds and self.records:
            self.records[-1].pulse_time = now
        # Self-reception anchors the sample multiset; tau_vv itself is
        # identically zero (both terms of the difference coincide).
        self._sim.call_in(self._self_delay(), self._record_self_reference, r)

    def _record_self_reference(self, r: int) -> None:
        self._self_reference[r] = self._clock.value()

    def on_pulse(self, sender: int, _receive_time: float) -> None:
        """Feed one received pulse from cluster member ``sender``."""
        if not self._running:
            return
        count = self._pulse_counts.get(sender)
        if count is None:
            raise ConfigError(
                f"{self.name}: pulse from unexpected sender {sender!r}")
        self.stats.pulses_received += 1
        inferred_round = count + 1
        self._pulse_counts[sender] = inferred_round
        if inferred_round < self._round:
            if self._auto_resync:
                # Dynamic-topology healing: a lagging count means this
                # sender's pulses were dropped by a link outage that no
                # resync call caught (a blip entirely inside one
                # collection window).  Re-anchor the count at the
                # current round — the next pulse credits round + 1 —
                # instead of locking one round behind forever, and
                # fold this pulse into the live window if it is still
                # open.  Byzantine influence is unchanged: trimming
                # already bounds what any single sender's sample can
                # do, whatever round it is credited to.
                value = self._clock.value()
                self._pulse_counts[sender] = self._round
                self.stats.peer_resyncs += 1
                if (value < self._base
                        + self._schedule.phase2_end_offset(self._round)):
                    bucket = self._arrivals.setdefault(self._round, {})
                    bucket[sender] = value
                return
            self.stats.stale_pulses += 1
            return
        if inferred_round > self._round + MAX_ROUNDS_AHEAD:
            # A flooder is far ahead of its plausible schedule; don't
            # let it grow our buffers.  (Undo the count bump so honest
            # behaviour later is unaffected -- it cannot be honest
            # anyway, but bounded state matters.)
            self._pulse_counts[sender] = count
            self.stats.flooded_pulses += 1
            return
        bucket = self._arrivals.setdefault(inferred_round, {})
        bucket[sender] = self._clock.value()

    def _do_correct(self, r: int) -> None:
        clock_now = self._clock.value()
        reference = self._self_reference.pop(r, None)
        if reference is None:
            # Self-reception did not land inside phase 2 -- possible
            # only in improper executions.  Fall back to "now".
            self.stats.self_reference_misses += 1
            reference = clock_now
        arrivals = self._arrivals.pop(r, {})
        if arrivals:
            self.stats.exchanges_completed += 1
        samples = [0.0]  # tau_vv = 0 by definition
        for w in self._peer_ids:
            value = arrivals.get(w)
            if value is None:
                # Latest-possible substitution; at most f honest-free
                # entries in a proper execution, removed by trimming.
                self.stats.missing_pulses += 1
                value = clock_now
            samples.append(value - reference)
        samples.sort()
        n = len(samples)
        f = self._f
        correction = 0.5 * (samples[f] + samples[n - 1 - f])

        tau3 = self._schedule.tau3(r)
        cap = self._clock.phi * tau3
        if correction > cap:
            correction = cap
            self.stats.clamped_corrections += 1
        elif correction < -cap:
            correction = -cap
            self.stats.clamped_corrections += 1
        self.stats.corrections.append(correction)
        if self._record_rounds and self.records:
            self.records[-1].correction = correction

        phi = self._clock.phi
        delta = 1.0 - (1.0 + 1.0 / phi) * correction / (tau3 + correction)
        if delta < 0.0:
            # correction is clamped to phi * tau3, where delta is
            # exactly 0 mathematically; float rounding can land a few
            # ulps below (seen under heavy topology churn).
            delta = 0.0
        self._clock.set_delta(delta)

    def _end_round(self, r: int) -> None:
        self.stats.rounds_completed = r
        if self._record_rounds and self.records:
            record = self.records[-1]
            record.t_end = self._sim.now
            record.l_end = self._clock.value()
        self._begin_round(r + 1)
