"""The shared round schedule (phase durations, logical start times).

Algorithm 1 proceeds in rounds ``r = 1, 2, ...`` of three phases with
*logical* durations ``tau1(r), tau2(r), tau3(r)``.  All correct nodes
follow one deterministic schedule computed from the parameters:

* with perfect initialization (``e(1) = E``), the durations are
  constant (Eq. (10)) and round ``r`` starts at logical time
  ``(r-1) * T`` relative to the node's cluster base;
* with loose initialization (``e(1) > E``), the error bound sequence
  contracts geometrically, ``e(r+1) = alpha * e(r) + beta`` (Corollary
  B.13), and the durations shrink with it (Eq. (8) equalities) until
  they reach the steady state.

Different clusters may run at different logical *bases* (initial
offsets); the schedule itself is base-free and the cluster-sync engine
adds the base.
"""

from __future__ import annotations

from repro.core.params import Parameters
from repro.errors import ParameterError


class RoundSchedule:
    """Per-round logical durations and cumulative start offsets.

    All round indices are 1-based, matching the paper.  Offsets are
    logical times relative to the cluster's base value (round 1 starts
    at offset 0).
    """

    def __init__(self, params: Parameters, e1: float | None = None) -> None:
        self._params = params
        if e1 is None:
            e1 = params.cap_e
        if e1 < params.cap_e:
            raise ParameterError(
                f"initial error bound e1={e1!r} below steady state "
                f"E={params.cap_e!r}")
        self._e1 = e1
        self._constant = (e1 == params.cap_e)
        # Lazily extended caches, index 0 <-> round 1.
        self._e: list[float] = [e1]
        self._starts: list[float] = [0.0]

    @property
    def params(self) -> Parameters:
        return self._params

    @property
    def is_constant(self) -> bool:
        """True when every round has the steady-state durations."""
        return self._constant

    def _extend_to(self, r: int) -> None:
        if r < 1:
            raise ParameterError(f"rounds are 1-based: {r!r}")
        p = self._params
        while len(self._e) < r:
            previous = self._e[-1]
            nxt = max(p.alpha * previous + p.beta, p.cap_e)
            self._e.append(nxt)
            self._starts.append(self._starts[-1]
                                + self._round_length_from_e(previous))

    def _round_length_from_e(self, e: float) -> float:
        p = self._params
        scale = p.tau_stretch * p.theta_g
        return scale * (e + (e + p.d) + (e + p.u) * p.c1)

    # -- per-round quantities -------------------------------------------

    def e(self, r: int) -> float:
        """Error bound ``e(r)`` on the round-``r`` pulse diameter."""
        self._extend_to(r)
        return self._e[r - 1]

    def tau1(self, r: int) -> float:
        p = self._params
        return p.tau_stretch * p.theta_g * self.e(r)

    def tau2(self, r: int) -> float:
        p = self._params
        return p.tau_stretch * p.theta_g * (self.e(r) + p.d)

    def tau3(self, r: int) -> float:
        p = self._params
        return p.tau_stretch * p.theta_g * (self.e(r) + p.u) * p.c1

    def round_length(self, r: int) -> float:
        """Total logical round length ``T(r)``."""
        return self._round_length_from_e(self.e(r))

    # -- cumulative offsets ----------------------------------------------

    def round_start(self, r: int) -> float:
        """Logical offset at which round ``r`` begins."""
        self._extend_to(r)
        return self._starts[r - 1]

    def pulse_offset(self, r: int) -> float:
        """Logical offset of the round-``r`` pulse (end of phase 1)."""
        return self.round_start(r) + self.tau1(r)

    def phase2_end_offset(self, r: int) -> float:
        """Logical offset of the end of phase 2 of round ``r``."""
        return self.round_start(r) + self.tau1(r) + self.tau2(r)

    def rounds_until(self, logical_offset: float) -> int:
        """Largest round whose start offset is ``<= logical_offset``."""
        r = 1
        while self.round_start(r + 1) <= logical_offset:
            r += 1
        return r
