"""The unified protocol API: one surface for every algorithm.

Historically each algorithm in this library shipped its own bespoke
system class (``FtgcsSystem``, ``MasterSlaveSystem``,
``GcsSingleSystem``, ``SrikanthTouegSystem``, plus function-only
Lynch–Welch) with incompatible constructors, run loops, and result
types.  This module defines the common surface they all now implement:

``SyncProtocol``
    The algorithm adapter interface: :meth:`~SyncProtocol.build_nodes`
    wires nodes/drivers onto a simulation substrate,
    :meth:`~SyncProtocol.start` arms them, :meth:`~SyncProtocol.advance`
    drives the kernel, and :meth:`~SyncProtocol.collect` returns one
    uniform :class:`ProtocolRunResult`.  Class-level capability flags
    (``supports_faults``, ``supports_dynamic_topology``,
    ``needs_graph``, ``needs_params``) declare what a protocol can
    compose with — the builder validates against them eagerly.

``SystemBuilder``
    Composes protocol x topology x faults x clock/delay models into a
    generic :class:`System`:

    >>> from repro.core.protocol import SystemBuilder
    >>> from repro import ClusterGraph, Parameters
    >>> params = Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1)
    >>> system = (SystemBuilder("ftgcs")
    ...           .topology(ClusterGraph.line(3)).params(params)
    ...           .rounds(5).faults("equivocate").seed(7).build())
    >>> result = system.run()
    >>> result.protocol
    'ftgcs'

``System``
    The generic runtime: applies the
    :class:`~repro.topology.schedule.TopologySchedule` edge events
    through the kernel (so edges appear/disappear mid-run for
    protocols that support it), starts the protocol, drives it to its
    horizon, and collects the result.

``PROTOCOLS`` / :func:`register_protocol`
    Name-addressable registry, the analogue of the sweep engine's cell
    kinds.  The five built-in protocols live in :mod:`repro.protocols`
    and load lazily on first lookup; custom protocols registered
    outside the library are visible to pool workers only under the
    ``fork`` start method (same caveat as custom cell kinds).

The sweep engine's generic ``"protocol"`` cell kind is a thin picklable
frontend over this module: a
:class:`~repro.harness.sweep.ScenarioSpec` names the protocol, the
topology (and optional schedule), parameters, faults, and payload, and
the worker rebuilds the system here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigError
from repro.topology.cluster_graph import ClusterGraph
from repro.topology.schedule import TopologySchedule

#: Execution backends a system can compile to.  ``"event"`` is the
#: discrete-event kernel (full per-message fidelity, every capability);
#: ``"vectorized"`` is the numpy struct-of-arrays round engine
#: (:mod:`repro.engine_vec`) for protocols advertising
#: ``supports_vectorized`` — static topologies, no per-delivery fault
#: strategies or loss models (fault injection goes through the
#: engine-agnostic :mod:`repro.faults.adversary` layer instead), but
#: million-node scale.
ENGINES = ("event", "vectorized")


@dataclass(frozen=True)
class BuildContext:
    """Everything a protocol needs to build its nodes, by value.

    The builder assembles this; protocols read from it in
    :meth:`SyncProtocol.build_nodes`.  ``config`` carries
    protocol-family configuration (for the FTGCS family these are
    :class:`~repro.core.system.SystemConfig` kwargs), ``payload``
    carries protocol-specific knobs (e.g. the master–slave ``jump``
    flag, the GCS baseline's ``GcsParams``).
    """

    graph: ClusterGraph | None = None
    schedule: TopologySchedule | None = None
    params: Any = None
    rounds: int = 1
    seed: int = 0
    strategy: str | None = None
    strategy_args: tuple = ()
    faults_per_cluster: int | None = None
    #: First-contact estimator bring-up (requires the protocol's
    #: ``supports_first_contact`` capability).
    first_contact: bool = False
    #: Message-loss spec (``{"kind": ..., **kwargs}``; see
    #: :mod:`repro.net.loss`) or ``None`` for the reliable wire.
    loss: dict | None = None
    config: dict = field(default_factory=dict)
    payload: dict = field(default_factory=dict)
    #: Engine-agnostic adversary spec (``{"name": ..., **kwargs}``, see
    #: :data:`repro.faults.adversary.ADVERSARIES`) or ``None``.
    adversary: dict | None = None


@dataclass
class ProtocolRunResult:
    """The one result shape every protocol run produces.

    ``max_global_skew`` / ``max_local_skew`` are the uniform headline
    measurements (local = worst skew across an adjacent cluster-level
    pair).  ``series`` holds the protocol's sample series — its element
    shape is protocol-specific (``SkewSnapshot`` objects for the FTGCS
    family, ``(t, local, global)`` tuples for the GCS baseline) but is
    always picklable and time-ordered.  ``detail`` preserves the
    protocol-native result object (a
    :class:`~repro.core.system.RunResult` for FTGCS/Lynch–Welch, the
    sampler's ``SkewMaxima`` for master–slave, the raw sample list for
    GCS, the max-skew float for Srikanth–Toueg) for analyses that need
    more than the uniform fields.
    """

    protocol: str
    seed: int
    max_global_skew: float = 0.0
    max_local_skew: float = 0.0
    series: list = field(default_factory=list)
    edge_maxima: dict[tuple[int, int], float] = field(default_factory=dict)
    messages_sent: int = 0
    #: Total messages dropped, all causes (deactivated links, loss
    #: model, in-flight quarantine); every adapter's
    #: :meth:`SyncProtocol.collect` fills it from its network, so
    #: dynamic-run message accounting is uniform.
    messages_dropped: int = 0
    #: Drops by a deactivated link specifically (0 on static
    #: topologies).
    dropped_link_down: int = 0
    #: Messages eaten by the attached loss model (0 on a reliable
    #: wire).
    messages_lost: int = 0
    #: Node churn accounting: crash / rejoin-with-amnesia events
    #: applied during the run (0 without a node-churn schedule).
    node_crashes: int = 0
    node_rejoins: int = 0
    #: Time after which the *local* skew series stays inside its
    #: steady band (see ``repro.analysis.metrics.stabilization_time``);
    #: ``inf`` when the run never settles, ``None`` when the protocol
    #: produced no local-skew series to measure.
    stabilization_time: float | None = None
    events_processed: int = 0
    #: Max-estimate re-announcements truncated by the configured level
    #: cap (``SystemConfig.max_reannounce_levels``); only the FTGCS
    #: family can produce them, every other adapter reports 0.  A
    #: nonzero count means the global-skew estimate decode ran as an
    #: underestimate after some link bring-up (sound but lossy).
    reannounce_cap_hits: int = 0
    #: Uniform adversary counters block (``None`` on adversary-free
    #: runs): the resolved model spec plus ``count``, ``amplitude``,
    #: ``mechanism``, and — on the vectorized engine — the injection
    #: totals (``rounds_acted``, ``injected_abs_max``/``_sum``,
    #: ``silenced_slots``).
    adversary: dict | None = None
    detail: Any = None


class SyncProtocol:
    """Base class and interface contract for synchronization protocols.

    Lifecycle (driven by :class:`System`):

    1. :meth:`build_nodes` — construct the substrate (simulator,
       network, clocks, nodes) from a :class:`BuildContext`; must set
       ``self.sim`` and ``self.network``.
    2. :meth:`start` — arm all nodes/drivers/samplers.
    3. :meth:`advance` — drive the kernel to an absolute horizon
       (protocols with their own sampling loops override this).
    4. :meth:`collect` — snapshot measurements into a
       :class:`ProtocolRunResult`.

    Capability flags are *declarations* checked by the builder before
    any construction happens, so incompatible compositions fail fast
    with a message naming the protocol.
    """

    #: Registry name (must be unique; set by subclasses).
    name: str = ""
    #: Accepts the named fault-strategy model (``.faults(...)``).
    supports_faults: bool = False
    #: Tolerates mid-run edge activation changes (TopologySchedule).
    supports_dynamic_topology: bool = False
    #: Tolerates whole-node crash/rejoin events
    #: (:class:`~repro.topology.schedule.NodeChurnSchedule`): the
    #: protocol implements :meth:`apply_node_event` so a crashed node
    #: goes dark and a rejoining node re-initializes with amnesia.
    supports_node_churn: bool = False
    #: Supports first-contact estimator bring-up
    #: (``SystemBuilder.first_contact()``): per-neighbor estimator
    #: state follows the live edge set instead of being frozen at
    #: build time from the union graph.
    supports_first_contact: bool = False
    #: Has a vectorized round model registered in
    #: :data:`repro.engine_vec.protocols.VEC_PROTOCOLS`, so
    #: ``SystemBuilder.engine("vectorized")`` can compile it to the
    #: struct-of-arrays engine.
    supports_vectorized: bool = False
    #: The vectorized round model additionally accepts per-round
    #: fault-vector injection from an
    #: :class:`~repro.faults.adversary.AdversaryModel`
    #: (``SystemBuilder.adversary(...)`` on ``engine("vectorized")``).
    supports_vectorized_faults: bool = False
    #: Requires a cluster graph (clique-only protocols set False).
    needs_graph: bool = True
    #: Requires ``BuildContext.params`` (protocols whose parameters
    #: travel in ``payload`` set False).
    needs_params: bool = True

    def __init__(self) -> None:
        self.sim = None
        self.network = None
        self.ctx: BuildContext | None = None
        #: Node-churn accounting, incremented by the generic system as
        #: it applies schedule node events; adapters copy them into
        #: :class:`ProtocolRunResult` in :meth:`collect`.
        self.node_crashes = 0
        self.node_rejoins = 0
        #: Uniform adversary counters (adapters fill it in
        #: ``build_nodes`` when ``ctx.adversary`` is set and copy it
        #: into :class:`ProtocolRunResult` in ``collect``).
        self.adversary_counters: dict | None = None
        #: Network node ids currently down due to node churn; rejoin
        #: link restoration skips links whose far end is still here.
        self._crashed_net_nodes: set[int] = set()

    # -- lifecycle ------------------------------------------------------

    def build_nodes(self, ctx: BuildContext) -> None:
        """Construct the full substrate; must set ``sim``/``network``."""
        raise NotImplementedError

    def start(self) -> None:
        """Arm every node, driver, and sampler."""
        raise NotImplementedError

    def horizon(self) -> float:
        """Absolute kernel time this protocol's run should reach."""
        raise NotImplementedError

    def advance(self, until: float) -> None:
        """Drive the kernel to ``until`` (override to interleave
        sampling)."""
        self.sim.run(until)

    def collect(self) -> ProtocolRunResult:
        """Snapshot measurements into the uniform result shape."""
        raise NotImplementedError

    # -- topology plumbing ----------------------------------------------

    def edge_links(self, a: int, b: int) -> tuple:
        """Network links realizing cluster edge ``(a, b)``.

        The generic system maps topology-schedule events through this:
        protocols on the augmented node graph return the full ``k x k``
        bipartite link set; cluster-level protocols return the edge
        itself (the default).
        """
        return ((a, b),)

    def apply_edge_event(self, edge: tuple[int, int],
                         active: bool) -> None:
        """Apply one topology-schedule edge event to the live system.

        The default toggles every network link realizing the cluster
        edge.  Protocols with per-neighbor state that must track the
        live edge set (first-contact estimator bring-up) override this
        to additionally notify their nodes — after calling ``super()``
        so links are already in their new state when nodes react.
        """
        for a, b in self.edge_links(*edge):
            self.network.set_link_active(a, b, active)

    def apply_node_event(self, cluster: int, alive: bool,
                         drop_in_flight: bool = False) -> None:
        """Apply one node churn event to the live system.

        ``alive=False`` crashes the whole cluster node: every incident
        link goes down (optionally quarantining in-flight traffic) and
        the node's volatile state is lost.  ``alive=True`` rejoins it
        *with amnesia*: links come back and the node re-initializes
        through its bring-up path.  Protocols declaring
        ``supports_node_churn`` must override this; the base raises so
        a capability-flag mismatch can never half-apply churn.
        """
        raise ConfigError(
            f"protocol {self.name!r} does not implement node churn")

    def cluster_nodes(self, cluster: int) -> tuple:
        """Network node ids realizing topology vertex ``cluster``.

        Cluster-level protocols are one node per vertex (the default);
        protocols on the augmented node graph override this with the
        cluster's member set.
        """
        return (cluster,)

    def _apply_node_links(self, cluster: int, alive: bool,
                          drop_in_flight: bool = False) -> None:
        """Toggle every link incident to a crashing/rejoining vertex.

        Crash downs all incident links (optionally quarantining
        in-flight messages); rejoin brings them back *except* links
        whose far end belongs to a vertex that is itself still crashed
        — those stay dark until that vertex rejoins too.
        """
        members = self.cluster_nodes(cluster)
        if alive:
            self._crashed_net_nodes.difference_update(members)
            for node in members:
                for neighbor in self.network.neighbors(node):
                    if neighbor in self._crashed_net_nodes:
                        continue
                    self.network.set_link_active(node, neighbor, True)
        else:
            self._crashed_net_nodes.update(members)
            for node in members:
                for neighbor in self.network.neighbors(node):
                    self.network.set_link_active(
                        node, neighbor, False,
                        drop_in_flight=drop_in_flight)

    def analysis_system(self):
        """The live object in-worker collectors operate on, or ``None``
        for protocols without collector support."""
        return None


class System:
    """A generic, protocol-agnostic synchronization system.

    Construction builds the protocol's nodes immediately (so analysis
    code can inspect the substrate before running); :meth:`run` applies
    the topology schedule, starts the protocol, drives it, and
    collects.
    """

    def __init__(self, protocol: SyncProtocol, ctx: BuildContext) -> None:
        self.protocol = protocol
        self.ctx = ctx
        protocol.ctx = ctx
        protocol.build_nodes(ctx)
        if protocol.sim is None:
            raise ConfigError(
                f"protocol {protocol.name!r} did not set .sim in "
                f"build_nodes")
        if ctx.loss:
            # Uniform loss attachment: every adapter exposes .network,
            # and the model owns its own derived stream so delay/fault
            # streams are untouched (opt-out-by-construction).
            import random as _random

            from repro.net.loss import build_loss_model
            from repro.sim.rng import derive_seed
            protocol.network.set_loss_model(build_loss_model(
                ctx.loss,
                _random.Random(derive_seed(ctx.seed, "net/loss"))))
        self._started = False
        self._schedule_horizon: float | None = None
        self._schedule_events_applied = 0
        self._node_events_applied = 0

    def _set_edge(self, edge: tuple[int, int], active: bool) -> None:
        self.protocol.apply_edge_event(edge, active)

    def _set_node(self, cluster: int, alive: bool,
                  drop_in_flight: bool) -> None:
        self.protocol.apply_node_event(cluster, alive,
                                       drop_in_flight=drop_in_flight)
        if alive:
            self.protocol.node_rejoins += 1
        else:
            self.protocol.node_crashes += 1

    def _apply_schedule(self, horizon: float) -> None:
        """Schedule edge events up to ``horizon`` (incremental).

        Schedule event streams are deterministic prefixes — a longer
        horizon re-derives the same leading events — so extending a
        run past the previously applied horizon only enqueues the new
        suffix.  The already-applied prefix is skipped *by index*, not
        by timestamp: a horizon-boundary tick's timestamp is clamped
        to the horizon it was derived for, so re-deriving it under a
        longer horizon yields the same event at a (few ulps) different
        time — an index cursor cannot be fooled into enqueueing that
        event twice.  Safe to call repeatedly.
        """
        schedule = self.ctx.schedule
        if schedule is None or schedule.is_static:
            return
        applied = self._schedule_horizon
        if applied is not None and horizon <= applied:
            return
        seed = self.ctx.seed
        drop = bool(getattr(schedule, "drop_in_flight", False))
        if applied is None:
            for edge in schedule.initial_down(seed):
                self._set_edge(edge, False)
            for cluster in schedule.initial_crashed(seed):
                self._set_node(cluster, False, drop)
        sim = self.protocol.sim
        events = schedule.events(horizon, seed)
        for time, edge, active in events[self._schedule_events_applied:]:
            sim.call_at(time, self._set_edge, edge, active)
        self._schedule_events_applied = len(events)
        node_events = schedule.node_events(horizon, seed)
        for time, cluster, alive in node_events[
                self._node_events_applied:]:
            sim.call_at(time, self._set_node, cluster, alive, drop)
        self._node_events_applied = len(node_events)
        self._schedule_horizon = horizon

    def start(self, horizon: float | None = None) -> None:
        """Apply schedule events up to ``horizon`` and arm the
        protocol."""
        if self._started:
            raise ConfigError("system already started")
        self._started = True
        self._apply_schedule(self.protocol.horizon()
                             if horizon is None else horizon)
        self.protocol.start()

    def run(self, until: float | None = None) -> ProtocolRunResult:
        """Start (if needed), drive to ``until`` (default: the
        protocol's own horizon), and collect the uniform result."""
        horizon = self.protocol.horizon() if until is None else until
        if not self._started:
            self.start(horizon)
        else:
            # A run extending past the horizon applied at start time
            # needs the schedule's event suffix enqueued first.
            self._apply_schedule(horizon)
        self.protocol.advance(horizon)
        return self.protocol.collect()


class SystemBuilder:
    """Fluent composition of protocol x topology x faults x models.

    Methods mutate and return the builder (it is consumed once by
    :meth:`build`); see the module docstring for a worked example.
    Validation is eager where possible: unknown protocol names fail in
    the constructor, capability violations fail in :meth:`build`
    before any node is constructed.
    """

    def __init__(self, protocol: str | SyncProtocol | type) -> None:
        if isinstance(protocol, str):
            protocol = get_protocol(protocol)()
        elif isinstance(protocol, type) and issubclass(protocol,
                                                       SyncProtocol):
            protocol = protocol()
        elif not isinstance(protocol, SyncProtocol):
            raise ConfigError(
                f"protocol must be a name, SyncProtocol subclass, or "
                f"instance: {protocol!r}")
        self._protocol = protocol
        self._engine = "event"
        self._graph: ClusterGraph | None = None
        self._schedule: TopologySchedule | None = None
        self._params = None
        self._rounds = 1
        self._seed = 0
        self._strategy: str | None = None
        self._strategy_args: tuple = ()
        self._faults_per_cluster: int | None = None
        self._adversary: dict | None = None
        self._first_contact = False
        self._loss: dict | None = None
        self._config: dict = {}
        self._payload: dict = {}

    # -- composition ----------------------------------------------------

    def topology(self, graph: ClusterGraph | TopologySchedule
                 ) -> "SystemBuilder":
        """Attach the cluster graph, or a topology schedule (whose
        base graph is used and whose events drive link activation)."""
        if isinstance(graph, TopologySchedule):
            self._schedule = graph
            self._graph = graph.graph
        elif isinstance(graph, ClusterGraph):
            self._graph = graph
        else:
            raise ConfigError(
                f"topology must be a ClusterGraph or TopologySchedule: "
                f"{graph!r}")
        return self

    def engine(self, name: str) -> "SystemBuilder":
        """Select the execution backend (one of :data:`ENGINES`).

        ``"event"`` (the default) builds the discrete-event
        :class:`System`; ``"vectorized"`` compiles the composition to
        the numpy round engine (:mod:`repro.engine_vec`) — requires
        the protocol's ``supports_vectorized`` capability and a
        static, strategy-free, loss-free composition.
        """
        if name not in ENGINES:
            raise ConfigError(
                f"unknown engine {name!r}; known: {list(ENGINES)}")
        self._engine = name
        return self

    def params(self, params) -> "SystemBuilder":
        self._params = params
        return self

    def rounds(self, rounds: int) -> "SystemBuilder":
        self._rounds = rounds
        return self

    def seed(self, seed: int) -> "SystemBuilder":
        self._seed = seed
        return self

    def faults(self, strategy: str, *args,
               per_cluster: int | None = None) -> "SystemBuilder":
        """Place a named fault strategy in every cluster (resolved via
        :data:`repro.faults.strategies.STRATEGIES`)."""
        self._strategy = strategy
        self._strategy_args = tuple(args)
        if per_cluster is not None:
            self._faults_per_cluster = per_cluster
        return self

    def adversary(self, name: str, **kwargs) -> "SystemBuilder":
        """Attach an engine-agnostic adversary model (resolved via
        :data:`repro.faults.adversary.ADVERSARIES`).

        Unlike :meth:`faults` — the event-kernel-only named-strategy
        path — an adversary composes with *both* engines: per-round
        fault-vector injection on ``engine("vectorized")`` (protocols
        declaring ``supports_vectorized_faults``), the protocol's
        native fault mechanism on the event kernel.  ``kwargs`` are
        the budget knobs (``amplitude``, ``count``) plus model
        specifics; ``.adversary(None)`` clears.
        """
        if name is None:
            self._adversary = None
            return self
        from repro.faults.adversary import get_adversary
        get_adversary(name, **kwargs)  # eager name/kwargs validation
        self._adversary = {"name": name, **kwargs}
        return self

    def first_contact(self, enabled: bool = True) -> "SystemBuilder":
        """Enable first-contact estimator bring-up: per-neighbor
        estimator state follows the live edge set (dormant while a
        link is down at start, brought up on first contact, warm-up
        rule before entering the trigger aggregation).  Checked
        against the protocol's ``supports_first_contact`` flag."""
        self._first_contact = bool(enabled)
        return self

    def lossy(self, kind: str = "bernoulli", **kwargs) -> "SystemBuilder":
        """Attach a message-loss model (fault injection).

        ``kind`` and kwargs follow :func:`repro.net.loss.
        build_loss_model` — e.g. ``.lossy(rate=0.05)`` for 5%
        Bernoulli loss, or ``.lossy("burst", p_g2b=0.05, p_b2g=0.3,
        p_bad=0.8)`` for Gilbert–Elliott bursts.  Validated eagerly so
        a bad rate fails here, not mid-run.  ``.lossy(None)`` clears.
        """
        if kind is None:
            self._loss = None
            return self
        from repro.net.loss import validate_loss_spec
        spec = {"kind": kind, **kwargs}
        validate_loss_spec(spec)
        self._loss = spec
        return self

    def configure(self, **config) -> "SystemBuilder":
        """Merge protocol-family configuration (FTGCS family:
        :class:`~repro.core.system.SystemConfig` kwargs, including
        ``rate_model``/``delay_model`` specs)."""
        self._config.update(config)
        return self

    def payload(self, **payload) -> "SystemBuilder":
        """Merge protocol-specific knobs."""
        self._payload.update(payload)
        return self

    # -- compilation ----------------------------------------------------

    def build(self) -> "System":
        """Validate capabilities and construct the system.

        Returns the event-engine :class:`System`, or (after
        ``.engine("vectorized")``) the duck-compatible
        :class:`~repro.engine_vec.engine.VecSystem`.
        """
        protocol = self._protocol
        adversary_model = None
        if self._adversary is not None:
            if self._strategy is not None:
                raise ConfigError(
                    "compose either .faults(...) or .adversary(...), "
                    "not both")
            from repro.faults.adversary import (
                get_adversary,
                validate_event_support,
            )
            adversary_model = get_adversary(**self._adversary)
        if self._engine == "vectorized":
            if not protocol.supports_vectorized:
                raise ConfigError(
                    f"protocol {protocol.name!r} has no vectorized "
                    f"port (supports_vectorized is False)")
            if self._strategy is not None:
                raise ConfigError(
                    "the vectorized engine does not support the named "
                    "fault-strategy model; use .adversary(...) or the "
                    "event engine")
            if adversary_model is not None:
                if not protocol.supports_vectorized_faults:
                    raise ConfigError(
                        f"protocol {protocol.name!r} does not support "
                        f"vectorized fault injection "
                        f"(supports_vectorized_faults is False)")
                if not adversary_model.supports_vectorized:
                    raise ConfigError(
                        f"adversary {adversary_model.name!r} has no "
                        f"vectorized realization; use the event "
                        f"engine")
        elif adversary_model is not None:
            validate_event_support(adversary_model, protocol.name)
            if self._schedule is not None and not self._schedule.is_static:
                raise ConfigError(
                    "the vectorized engine runs static topologies "
                    "only; use the event engine for schedules")
            if self._first_contact:
                raise ConfigError(
                    "the vectorized engine does not support "
                    "first-contact bring-up; use the event engine")
            if self._loss:
                raise ConfigError(
                    "the vectorized engine does not support loss "
                    "models; use the event engine")
        if protocol.needs_graph and self._graph is None:
            raise ConfigError(
                f"protocol {protocol.name!r} needs a topology; call "
                f".topology(...)")
        if self._strategy is not None and not protocol.supports_faults:
            raise ConfigError(
                f"protocol {protocol.name!r} does not support the "
                f"named fault-strategy model")
        if self._schedule is not None:
            if (self._schedule.has_edge_events
                    and not protocol.supports_dynamic_topology):
                raise ConfigError(
                    f"protocol {protocol.name!r} does not support "
                    f"dynamic topologies")
            if (self._schedule.has_node_events
                    and not protocol.supports_node_churn):
                raise ConfigError(
                    f"protocol {protocol.name!r} does not support "
                    f"node churn")
        if self._first_contact and not protocol.supports_first_contact:
            raise ConfigError(
                f"protocol {protocol.name!r} does not support "
                f"first-contact estimator bring-up")
        ctx = BuildContext(
            graph=self._graph, schedule=self._schedule,
            params=self._params, rounds=self._rounds, seed=self._seed,
            strategy=self._strategy, strategy_args=self._strategy_args,
            faults_per_cluster=self._faults_per_cluster,
            first_contact=self._first_contact,
            loss=dict(self._loss) if self._loss else None,
            config=dict(self._config), payload=dict(self._payload),
            adversary=(dict(self._adversary)
                       if self._adversary else None))
        if protocol.needs_params and ctx.params is None:
            raise ConfigError(
                f"protocol {protocol.name!r} needs params; call "
                f".params(...)")
        if self._engine == "vectorized":
            try:
                from repro.engine_vec.engine import build_vec_system
            except ImportError as exc:
                raise ConfigError(
                    "the vectorized engine requires numpy, which is "
                    "not importable here; install it or use the "
                    "event engine") from exc
            return build_vec_system(protocol.name, ctx)
        return System(protocol, ctx)


# ----------------------------------------------------------------------
# Protocol registry
# ----------------------------------------------------------------------

#: ``name -> SyncProtocol subclass``; populated by the built-in
#: :mod:`repro.protocols` module (lazily) and :func:`register_protocol`.
PROTOCOLS: dict[str, type[SyncProtocol]] = {}

_builtin_loaded = False


def _load_builtin_protocols() -> None:
    """Populate :data:`PROTOCOLS` with the five built-ins on first use.

    Deferred so :mod:`repro.core.protocol` stays importable from the
    algorithm modules themselves without a cycle; a partial import
    failure re-raises on the next lookup rather than leaving a
    silently truncated registry.
    """
    global _builtin_loaded
    if _builtin_loaded:
        return
    import repro.protocols  # noqa: F401  (registers the built-ins)

    _builtin_loaded = True


def register_protocol(cls: type[SyncProtocol]) -> type[SyncProtocol]:
    """Register a :class:`SyncProtocol` subclass under ``cls.name``.

    Usable as a class decorator.  Custom protocols registered outside
    the library are visible to pool workers only under the ``fork``
    start method (the default where available).
    """
    if not isinstance(cls, type) or not issubclass(cls, SyncProtocol):
        raise ConfigError(
            f"register_protocol needs a SyncProtocol subclass: {cls!r}")
    if not cls.name:
        raise ConfigError(f"protocol class {cls.__name__} has no name")
    if cls.name in PROTOCOLS:
        raise ConfigError(f"protocol {cls.name!r} already registered")
    PROTOCOLS[cls.name] = cls
    return cls


def get_protocol(name: str) -> type[SyncProtocol]:
    """Look up a registered protocol class by name."""
    _load_builtin_protocols()
    cls = PROTOCOLS.get(name)
    if cls is None:
        raise ConfigError(f"unknown protocol {name!r}; known: "
                          f"{sorted(PROTOCOLS)}")
    return cls


def protocol_names() -> list[str]:
    """Sorted names of every registered protocol."""
    _load_builtin_protocols()
    return sorted(PROTOCOLS)


__all__ = [
    "ENGINES",
    "PROTOCOLS",
    "BuildContext",
    "ProtocolRunResult",
    "SyncProtocol",
    "System",
    "SystemBuilder",
    "get_protocol",
    "protocol_names",
    "register_protocol",
]
