"""Fast/slow conditions and triggers (Definitions 4.1–4.4).

The GCS algorithm compares a cluster's clock against its neighbors on a
ladder of levels.  For level ``s = 1, 2, ...`` define thresholds
``2 s kappa`` (fast, even rungs) and ``(2s - 1) kappa`` (slow, odd
rungs).  With

    up   = max_A (L_A - L_C)      (how far the best neighbor is ahead)
    down = max_B (L_C - L_B)      (how far the worst neighbor is behind)

the paper's quantified definitions reduce to closed forms:

* **FC / FT** — exists integer ``s >= 1`` with ``up >= 2 s kappa -
  slack`` and ``down <= 2 s kappa + slack``;
* **SC / ST** — exists integer ``s >= 1`` with ``down >= (2s-1) kappa
  - slack`` and ``up <= (2s-1) kappa + slack``;

where ``slack = 0`` gives the *conditions* (on true cluster clocks) and
``slack = delta_trigger`` gives the *triggers* (on estimates).  We
solve the existence question directly instead of enumerating levels.

Lemma 4.5: for ``slack < 2 kappa`` the two triggers are mutually
exclusive; the library asserts this in its property-based tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ParameterError


def _exists_fast_level(up: float, down: float, kappa: float,
                       slack: float) -> bool:
    """Is there an integer ``s >= 1`` with
    ``up >= 2 s kappa - slack`` and ``down <= 2 s kappa + slack``?"""
    # s <= (up + slack) / (2 kappa)  and  s >= (down - slack) / (2 kappa)
    s_hi = math.floor((up + slack) / (2.0 * kappa))
    s_lo = max(1, math.ceil((down - slack) / (2.0 * kappa)))
    return s_hi >= s_lo


def _exists_slow_level(up: float, down: float, kappa: float,
                       slack: float) -> bool:
    """Is there an integer ``s >= 1`` (odd rung ``m = 2s - 1``) with
    ``down >= m kappa - slack`` and ``up <= m kappa + slack``?"""
    m_hi = math.floor((down + slack) / kappa)
    m_lo = max(1, math.ceil((up - slack) / kappa))
    if m_hi < m_lo:
        return False
    # Does [m_lo, m_hi] contain an odd integer?
    return (m_lo % 2 == 1) or (m_lo + 1 <= m_hi)


@dataclass(frozen=True)
class TriggerDecision:
    """Outcome of one trigger evaluation (with its inputs, for logs)."""

    fast: bool
    slow: bool
    up: float
    down: float


def evaluate(own_value: float, neighbor_values: dict[int, float],
             kappa: float, slack: float) -> TriggerDecision:
    """Evaluate FT/ST (or FC/SC with ``slack=0``) for one cluster/node.

    Parameters
    ----------
    own_value:
        The node's own logical clock (its stand-in for its cluster
        clock), or the true cluster clock when checking conditions.
    neighbor_values:
        Estimated (or true) clocks of the neighboring clusters.
    kappa, slack:
        Level width and trigger slack (``slack < 2 * kappa``).

    Returns
    -------
    TriggerDecision
        ``fast``/``slow`` flags plus the ``up``/``down`` extremes.
        With no neighbors both flags are ``False``.
    """
    if kappa <= 0:
        raise ParameterError(f"kappa must be positive: {kappa!r}")
    if slack < 0:
        raise ParameterError(f"slack must be non-negative: {slack!r}")
    if not neighbor_values:
        return TriggerDecision(fast=False, slow=False,
                               up=float("-inf"), down=float("-inf"))
    up = max(value - own_value for value in neighbor_values.values())
    down = max(own_value - value for value in neighbor_values.values())
    fast = _exists_fast_level(up, down, kappa, slack)
    slow = _exists_slow_level(up, down, kappa, slack)
    return TriggerDecision(fast=fast, slow=slow, up=up, down=down)
