"""The full FTGCS node: ClusterSync + estimators + InterclusterSync.

An :class:`FtgcsNode` composes, for one correct node ``v`` in cluster
``C``:

* a logical clock ``L_v`` (Eq. (2)) on the node's hardware clock;
* an *active* ClusterSync engine synchronizing ``L_v`` within ``C``;
* one passive :class:`~repro.core.estimates.ClusterEstimator` per
  adjacent cluster ``B``, providing ``L~_vB``;
* an :class:`~repro.core.intercluster.InterclusterSync` controller that
  sets ``gamma_v`` at every round start from the FT/ST triggers;
* optionally a :class:`~repro.core.max_estimate.MaxEstimate` for the
  Theorem C.3 global-skew rule.

Message routing: a SYNC pulse from a same-cluster peer feeds the active
engine; one from an adjacent cluster feeds that cluster's estimator;
MAX pulses feed the max-estimate.  Senders are identified at link level
(the paper assumes each node knows which neighbor, and hence which
cluster, a pulse came from).

Dynamic topologies (``dynamic_estimators=True``): estimator state
follows the *live* edge set instead of the build-time union graph.  An
adjacent cluster whose edge is down at time zero leaves its estimator
dormant; the edge appearing later — reported via
:meth:`FtgcsNode.set_cluster_link`, or evidenced by a first pulse —
triggers first-contact bring-up (:meth:`ClusterEstimator.bring_up`),
an edge re-appearing after an outage re-aligns pulse attribution
(:meth:`ClusterEstimator.resync`), and only *ready* estimates (the
warm-up rule: one completed exchange since (re)initialization) enter
the trigger min/max aggregation.  On link-up the max-estimate performs
its paired bring-up too: the receiver side resets the per-sender level
decode (quarantining arrivals for ``d`` so pre-outage in-flight pulses
cannot inflate the fresh count) and the sender side re-announces its
current level unicast over the fresh links ``U`` later (capped at
``max_reannounce_levels``, default :data:`MAX_REANNOUNCE_LEVELS`,
configurable via ``SystemConfig.max_reannounce_levels``; capping and
quarantining only under-estimate, which is the sound direction, and
every capped re-announcement is counted in
``stats.reannounce_cap_hits``).  With the flag off
(the default) behavior is bit-identical to the static implementation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.clocks.hardware import HardwareClock
from repro.clocks.logical import LogicalClock
from repro.core.cluster_sync import ClusterSyncCore
from repro.core.estimates import ClusterEstimator
from repro.core.intercluster import InterclusterSync
from repro.core.max_estimate import MaxEstimate
from repro.core.params import Parameters
from repro.core.rounds import RoundSchedule
from repro.errors import ConfigError
from repro.net.message import Pulse, PulseKind
from repro.net.network import Network
from repro.sim.kernel import Simulator


#: Default cap on MAX pulses re-sent per neighbor at link bring-up.  A
#: capped re-announcement makes the receiver's level decode an
#: underestimate, which is the sound direction for the ``M <= true
#: maximum`` invariant — but it *undercounts* silently on long outages,
#: so the cap is configurable (``SystemConfig.max_reannounce_levels``)
#: and every capped re-announcement is counted in
#: ``NodeStats.reannounce_cap_hits`` / ``RunResult.reannounce_cap_hits``.
MAX_REANNOUNCE_LEVELS = 64


@dataclass
class MaxEstimateConfig:
    """Settings for the optional global-skew estimate component."""

    unit: float
    enabled: bool = True


@dataclass
class NodeStats:
    """Counters not covered by the engines' own stats."""

    unknown_sender_pulses: int = 0
    dropped_after_crash: int = 0
    #: First-contact estimator (re)initializations (dynamic mode).
    estimator_bring_ups: int = 0
    #: Estimator pulse-attribution re-alignments after link outages.
    estimator_resyncs: int = 0
    #: MAX pulses re-sent at link bring-up (dynamic mode).
    max_reannounce_pulses: int = 0
    #: Re-announcements truncated by the level cap (each one means the
    #: receiving side decodes an *under*-estimate — sound, but worth
    #: surfacing so long-outage runs can size the cap).
    reannounce_cap_hits: int = 0
    #: per-round gamma choices as ``(round, gamma)`` pairs.
    mode_by_round: list[tuple[int, int]] = field(default_factory=list)


class FtgcsNode:
    """One correct node of the fault-tolerant GCS system."""

    def __init__(self, node_id: int, cluster_id: int, *,
                 sim: Simulator, network: Network, params: Parameters,
                 schedule: RoundSchedule, hardware: HardwareClock,
                 cluster_members: tuple[int, ...],
                 adjacent_members: dict[int, tuple[int, ...]],
                 bases: dict[int, float], initial_logical: float,
                 estimator_initials: dict[int, float],
                 rng: random.Random, policy: str = "slow_default",
                 max_estimate: MaxEstimateConfig | None = None,
                 record_rounds: bool = False,
                 dynamic_estimators: bool = False,
                 max_reannounce_levels: int = MAX_REANNOUNCE_LEVELS,
                 on_pulse_sent: Callable[[int, int, int, float], None]
                 | None = None) -> None:
        """Build and wire a node (see :class:`~repro.core.system.
        FtgcsSystem` for the usual entry point).

        ``cluster_members`` must include ``node_id`` itself;
        ``adjacent_members`` maps each adjacent cluster to all its
        member ids; ``bases`` must cover the own and all adjacent
        clusters.  ``dynamic_estimators`` opts into first-contact
        estimator bring-up (module docstring).  ``on_pulse_sent(
        cluster, round, node, time)`` is the system's pulse-log hook.
        """
        if node_id not in cluster_members:
            raise ConfigError(
                f"node {node_id} missing from its own cluster list")
        self.node_id = node_id
        self.cluster_id = cluster_id
        self._sim = sim
        self._network = network
        self._params = params
        self._schedule = schedule
        self._bases = dict(bases)
        self._adjacent_members = {b: tuple(members) for b, members
                                  in adjacent_members.items()}
        self._rng = rng
        self._crashed = False
        self._dynamic = dynamic_estimators
        if max_reannounce_levels < 1:
            raise ConfigError(
                f"max_reannounce_levels must be >= 1: "
                f"{max_reannounce_levels!r}")
        self._max_reannounce_levels = int(max_reannounce_levels)
        #: Cluster-level link state (dynamic mode); missing means up.
        self._link_active: dict[int, bool] = {}
        self._started = False
        self.stats = NodeStats()
        self._record_rounds = record_rounds

        d, u = params.d, params.u
        self._self_delay = lambda: d - u * rng.random()

        self.hardware = hardware
        self.logical = LogicalClock(
            sim, hardware, phi=params.phi, mu=params.mu, delta=1.0,
            gamma=0, initial_value=initial_logical, name=f"L[{node_id}]")

        peers = tuple(m for m in cluster_members if m != node_id)
        self._cluster_of: dict[int, int] = {
            m: cluster_id for m in cluster_members}
        pulse_hook = None
        if on_pulse_sent is not None:
            pulse_hook = (lambda r, t:
                          on_pulse_sent(cluster_id, r, node_id, t))
        self.core = ClusterSyncCore(
            self.logical, schedule, bases[cluster_id], peers, params.f,
            self_delay=self._self_delay, broadcast=self._broadcast_pulse,
            on_round_start=self._on_round_start,
            on_pulse_sent=pulse_hook,
            record_rounds=record_rounds, name=f"core[{node_id}]")

        self.estimators: dict[int, ClusterEstimator] = {}
        for b_cluster, members in adjacent_members.items():
            for m in members:
                self._cluster_of[m] = b_cluster
            self.estimators[b_cluster] = ClusterEstimator(
                sim, hardware, params, schedule, b_cluster, members,
                bases[b_cluster], estimator_initials[b_cluster],
                self_delay=self._self_delay,
                auto_resync=dynamic_estimators,
                name=f"est[{node_id}->{b_cluster}]")

        self.max_estimate: MaxEstimate | None = None
        if max_estimate is not None and max_estimate.enabled:
            self.max_estimate = MaxEstimate(
                sim, hardware, params.rho, max_estimate.unit, params.f,
                self._cluster_of, initial_logical,
                send_pulse=self._broadcast_max_pulse,
                transit_bonus=params.d - params.u,
                name=f"max[{node_id}]")

        self.intercluster = InterclusterSync(
            params, policy, own_value=self.logical.value,
            estimate_values=self._estimate_snapshot,
            max_estimate=self.max_estimate,
            record_history=record_rounds)

        network.set_handler(node_id, self.on_message)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start all engines; call once after construction.

        In dynamic-estimator mode, estimators whose cluster link is
        down at start stay *dormant* — they are brought up on first
        contact instead of coasting on build-time state.
        """
        self._started = True
        for b_cluster, estimator in self.estimators.items():
            if self._dynamic and not self._link_active.get(b_cluster,
                                                           True):
                continue
            estimator.start()
        if self.max_estimate is not None:
            self.max_estimate.start()
        self.core.start()

    def crash(self) -> None:
        """Stop everything (benign crash-fault support)."""
        self._crashed = True
        self.core.stop()
        for estimator in self.estimators.values():
            estimator.stop()
        if self.max_estimate is not None:
            self.max_estimate.stop()

    def rejoin(self) -> None:
        """Come back from :meth:`crash` *with amnesia*.

        The hardware oscillator kept counting through the outage (and
        with it the uncorrected logical clock, which drifted), but all
        protocol state is gone: round bookkeeping, estimator values,
        warm-up status, and max-estimate levels.  Everything restarts
        through the same first-contact machinery a freshly appearing
        link uses — the round engine resumes at the round the node's
        own progress implies (the :meth:`_bring_up` computation),
        estimators re-seed via ``bring_up`` and must complete a
        warm-up exchange before re-entering the trigger aggregation
        (dynamic mode), and gamma resets to the neutral mode.  No-op
        when not crashed.
        """
        if not self._crashed:
            return
        self._crashed = False
        self.logical.set_gamma(0)
        progress = self.logical.value() - self._bases[self.cluster_id]
        at_round = 1 if progress <= 0 else (
            self._schedule.rounds_until(progress) + 1)
        self.core.start(at_round=at_round)
        for b_cluster in self.estimators:
            if self._dynamic and not self._link_active.get(b_cluster,
                                                           True):
                continue  # stays dormant until first contact
            self._bring_up(b_cluster)
        if self.max_estimate is not None:
            self.max_estimate.start()

    @property
    def crashed(self) -> bool:
        return self._crashed

    # ------------------------------------------------------------------
    # Dynamic topology (first-contact estimator bring-up)
    # ------------------------------------------------------------------

    def set_cluster_link(self, b_cluster: int, active: bool) -> None:
        """Report a cluster-edge activation change to this node.

        Called by the system when a topology-schedule event touches the
        edge to ``b_cluster``.  Before :meth:`start` this only records
        the state (so initially-down links leave their estimators
        dormant); after start, a down→up transition triggers estimator
        bring-up (dormant) or pulse-attribution resync (re-contact),
        plus the max-estimate's paired reset/re-announce.  Down events
        need no action: the estimator simply coasts on extrapolation.
        No-op unless the node was built with ``dynamic_estimators``.
        """
        if not self._dynamic or b_cluster not in self.estimators:
            return
        was = self._link_active.get(b_cluster, True)
        self._link_active[b_cluster] = active
        if (not self._started or self._crashed or not active or was):
            return
        # Down -> up after start: first contact or re-contact.
        estimator = self.estimators[b_cluster]
        if not estimator.running:
            self._bring_up(b_cluster)
        else:
            self.stats.estimator_resyncs += estimator.resync()
        if self.max_estimate is not None:
            members = self._adjacent_members[b_cluster]
            # Quarantine window: any pre-outage in-flight pulse from
            # these senders delivers strictly before now + d; dropping
            # arrivals in that window makes over-counting impossible.
            quarantine_until = self._sim.now + self._params.d
            for member in members:
                self.max_estimate.reset_sender(
                    member, quarantine_until=quarantine_until)
            # Delay our own re-announcement by U so its copies (delays
            # in [d - U, d]) arrive at or after the peers' symmetric
            # quarantine deadline instead of inside it.
            self._sim.call_in(self._params.u, self._reannounce_max,
                              members)

    def _bring_up(self, b_cluster: int) -> None:
        """First-contact (re)initialization of one dormant estimator.

        The estimate clock is seeded from the owner's own logical
        *progress* re-based onto the tracked cluster
        (``base_B + (L_own - base_own)``): bases are build-time
        configuration the estimators already receive, and progress is
        within the global skew bound of the tracked cluster's true
        progress, so the seed starts inside a skew-bounded envelope of
        the cluster clock.  The passive engine starts one round
        boundary ahead of the round that progress implies, so its
        alarms lie in the future and pulse attribution is aligned.
        """
        progress = self.logical.value() - self._bases[self.cluster_id]
        value = self._bases[b_cluster] + progress
        at_round = 1 if progress <= 0 else (
            self._schedule.rounds_until(progress) + 1)
        estimator = self.estimators[b_cluster]
        estimator.bring_up(value, at_round)
        estimator.set_gamma(self.logical.gamma)
        self.stats.estimator_bring_ups += 1

    def _reannounce_max(self, members: tuple[int, ...]) -> None:
        """Unicast our announced MAX level over freshly-up links (the
        sender half of the max-estimate bring-up pact; fired ``U``
        after the link event, see :meth:`set_cluster_link`)."""
        if self._crashed:
            return
        announced = self.max_estimate.announced_level
        level = min(announced, self._max_reannounce_levels)
        if announced > level:
            # The decode on the other side will under-estimate by
            # (announced - level) levels — sound, but counted so runs
            # with long outages can tell the cap was binding.
            self.stats.reannounce_cap_hits += 1
        pulse = Pulse(sender=self.node_id, kind=PulseKind.MAX)
        for member in members:
            for _ in range(level):
                self._network.send(self.node_id, member, pulse)
                self.stats.max_reannounce_pulses += 1

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------

    def _broadcast_pulse(self) -> None:
        self._network.broadcast(self.node_id, Pulse(
            sender=self.node_id, kind=PulseKind.SYNC,
            debug_round=self.core.current_round))

    def _broadcast_max_pulse(self) -> None:
        self._network.broadcast(self.node_id, Pulse(
            sender=self.node_id, kind=PulseKind.MAX))

    def on_message(self, message, receive_time: float) -> None:
        """Network handler: route pulses to the right engine."""
        if self._crashed:
            self.stats.dropped_after_crash += 1
            return
        if not isinstance(message, Pulse):
            self.stats.unknown_sender_pulses += 1
            return
        if message.kind is PulseKind.MAX:
            if self.max_estimate is not None:
                self.max_estimate.on_pulse(message.sender, receive_time)
            return
        if message.kind is not PulseKind.SYNC:
            return  # other channels (e.g. PROPOSE) are not ours
        sender_cluster = self._cluster_of.get(message.sender)
        if sender_cluster is None:
            self.stats.unknown_sender_pulses += 1
            return
        if sender_cluster == self.cluster_id:
            if message.sender != self.node_id:
                self.core.on_pulse(message.sender, receive_time)
            return
        estimator = self.estimators.get(sender_cluster)
        if estimator is not None:
            if self._dynamic and not estimator.running:
                # A delivered pulse is itself first-contact evidence
                # (covers links activated without a schedule event
                # notification reaching us).
                self._link_active[sender_cluster] = True
                self._bring_up(sender_cluster)
            estimator.on_pulse(message.sender, receive_time)

    # ------------------------------------------------------------------
    # Mode control
    # ------------------------------------------------------------------

    def _estimate_snapshot(self) -> dict[int, float]:
        if self._dynamic:
            # Warm-up rule: only estimates with a completed exchange
            # since their last (re)initialization enter the trigger
            # min/max aggregation.
            return {b: est.value() for b, est in self.estimators.items()
                    if est.running and est.ready}
        return {b: est.value() for b, est in self.estimators.items()}

    def _on_round_start(self, round_index: int) -> None:
        if self.max_estimate is not None:
            self.max_estimate.observe_own(self.logical.value())
        gamma = self.intercluster.decide(round_index)
        self.logical.set_gamma(gamma)
        for estimator in self.estimators.values():
            estimator.set_gamma(gamma)
        self.stats.mode_by_round.append((round_index, gamma))
        if self._record_rounds and self.core.records:
            # The engine recorded the round before we chose gamma.
            self.core.records[-1].gamma = gamma
