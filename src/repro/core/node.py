"""The full FTGCS node: ClusterSync + estimators + InterclusterSync.

An :class:`FtgcsNode` composes, for one correct node ``v`` in cluster
``C``:

* a logical clock ``L_v`` (Eq. (2)) on the node's hardware clock;
* an *active* ClusterSync engine synchronizing ``L_v`` within ``C``;
* one passive :class:`~repro.core.estimates.ClusterEstimator` per
  adjacent cluster ``B``, providing ``L~_vB``;
* an :class:`~repro.core.intercluster.InterclusterSync` controller that
  sets ``gamma_v`` at every round start from the FT/ST triggers;
* optionally a :class:`~repro.core.max_estimate.MaxEstimate` for the
  Theorem C.3 global-skew rule.

Message routing: a SYNC pulse from a same-cluster peer feeds the active
engine; one from an adjacent cluster feeds that cluster's estimator;
MAX pulses feed the max-estimate.  Senders are identified at link level
(the paper assumes each node knows which neighbor, and hence which
cluster, a pulse came from).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.clocks.hardware import HardwareClock
from repro.clocks.logical import LogicalClock
from repro.core.cluster_sync import ClusterSyncCore
from repro.core.estimates import ClusterEstimator
from repro.core.intercluster import InterclusterSync
from repro.core.max_estimate import MaxEstimate
from repro.core.params import Parameters
from repro.core.rounds import RoundSchedule
from repro.errors import ConfigError
from repro.net.message import Pulse, PulseKind
from repro.net.network import Network
from repro.sim.kernel import Simulator


@dataclass
class MaxEstimateConfig:
    """Settings for the optional global-skew estimate component."""

    unit: float
    enabled: bool = True


@dataclass
class NodeStats:
    """Counters not covered by the engines' own stats."""

    unknown_sender_pulses: int = 0
    dropped_after_crash: int = 0
    #: per-round gamma choices as ``(round, gamma)`` pairs.
    mode_by_round: list[tuple[int, int]] = field(default_factory=list)


class FtgcsNode:
    """One correct node of the fault-tolerant GCS system."""

    def __init__(self, node_id: int, cluster_id: int, *,
                 sim: Simulator, network: Network, params: Parameters,
                 schedule: RoundSchedule, hardware: HardwareClock,
                 cluster_members: tuple[int, ...],
                 adjacent_members: dict[int, tuple[int, ...]],
                 bases: dict[int, float], initial_logical: float,
                 estimator_initials: dict[int, float],
                 rng: random.Random, policy: str = "slow_default",
                 max_estimate: MaxEstimateConfig | None = None,
                 record_rounds: bool = False,
                 on_pulse_sent: Callable[[int, int, int, float], None]
                 | None = None) -> None:
        """Build and wire a node (see :class:`~repro.core.system.
        FtgcsSystem` for the usual entry point).

        ``cluster_members`` must include ``node_id`` itself;
        ``adjacent_members`` maps each adjacent cluster to all its
        member ids; ``bases`` must cover the own and all adjacent
        clusters.  ``on_pulse_sent(cluster, round, node, time)`` is the
        system's pulse-log hook.
        """
        if node_id not in cluster_members:
            raise ConfigError(
                f"node {node_id} missing from its own cluster list")
        self.node_id = node_id
        self.cluster_id = cluster_id
        self._sim = sim
        self._network = network
        self._params = params
        self._rng = rng
        self._crashed = False
        self.stats = NodeStats()
        self._record_rounds = record_rounds

        d, u = params.d, params.u
        self._self_delay = lambda: d - u * rng.random()

        self.hardware = hardware
        self.logical = LogicalClock(
            sim, hardware, phi=params.phi, mu=params.mu, delta=1.0,
            gamma=0, initial_value=initial_logical, name=f"L[{node_id}]")

        peers = tuple(m for m in cluster_members if m != node_id)
        self._cluster_of: dict[int, int] = {
            m: cluster_id for m in cluster_members}
        pulse_hook = None
        if on_pulse_sent is not None:
            pulse_hook = (lambda r, t:
                          on_pulse_sent(cluster_id, r, node_id, t))
        self.core = ClusterSyncCore(
            self.logical, schedule, bases[cluster_id], peers, params.f,
            self_delay=self._self_delay, broadcast=self._broadcast_pulse,
            on_round_start=self._on_round_start,
            on_pulse_sent=pulse_hook,
            record_rounds=record_rounds, name=f"core[{node_id}]")

        self.estimators: dict[int, ClusterEstimator] = {}
        for b_cluster, members in adjacent_members.items():
            for m in members:
                self._cluster_of[m] = b_cluster
            self.estimators[b_cluster] = ClusterEstimator(
                sim, hardware, params, schedule, b_cluster, members,
                bases[b_cluster], estimator_initials[b_cluster],
                self_delay=self._self_delay,
                name=f"est[{node_id}->{b_cluster}]")

        self.max_estimate: MaxEstimate | None = None
        if max_estimate is not None and max_estimate.enabled:
            self.max_estimate = MaxEstimate(
                sim, hardware, params.rho, max_estimate.unit, params.f,
                self._cluster_of, initial_logical,
                send_pulse=self._broadcast_max_pulse,
                transit_bonus=params.d - params.u,
                name=f"max[{node_id}]")

        self.intercluster = InterclusterSync(
            params, policy, own_value=self.logical.value,
            estimate_values=self._estimate_snapshot,
            max_estimate=self.max_estimate,
            record_history=record_rounds)

        network.set_handler(node_id, self.on_message)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start all engines; call once after construction."""
        for estimator in self.estimators.values():
            estimator.start()
        if self.max_estimate is not None:
            self.max_estimate.start()
        self.core.start()

    def crash(self) -> None:
        """Stop everything (benign crash-fault support)."""
        self._crashed = True
        self.core.stop()
        for estimator in self.estimators.values():
            estimator.stop()
        if self.max_estimate is not None:
            self.max_estimate.stop()

    @property
    def crashed(self) -> bool:
        return self._crashed

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------

    def _broadcast_pulse(self) -> None:
        self._network.broadcast(self.node_id, Pulse(
            sender=self.node_id, kind=PulseKind.SYNC,
            debug_round=self.core.current_round))

    def _broadcast_max_pulse(self) -> None:
        self._network.broadcast(self.node_id, Pulse(
            sender=self.node_id, kind=PulseKind.MAX))

    def on_message(self, message, receive_time: float) -> None:
        """Network handler: route pulses to the right engine."""
        if self._crashed:
            self.stats.dropped_after_crash += 1
            return
        if not isinstance(message, Pulse):
            self.stats.unknown_sender_pulses += 1
            return
        if message.kind is PulseKind.MAX:
            if self.max_estimate is not None:
                self.max_estimate.on_pulse(message.sender, receive_time)
            return
        if message.kind is not PulseKind.SYNC:
            return  # other channels (e.g. PROPOSE) are not ours
        sender_cluster = self._cluster_of.get(message.sender)
        if sender_cluster is None:
            self.stats.unknown_sender_pulses += 1
            return
        if sender_cluster == self.cluster_id:
            if message.sender != self.node_id:
                self.core.on_pulse(message.sender, receive_time)
            return
        estimator = self.estimators.get(sender_cluster)
        if estimator is not None:
            estimator.on_pulse(message.sender, receive_time)

    # ------------------------------------------------------------------
    # Mode control
    # ------------------------------------------------------------------

    def _estimate_snapshot(self) -> dict[int, float]:
        return {b: est.value() for b, est in self.estimators.items()}

    def _on_round_start(self, round_index: int) -> None:
        if self.max_estimate is not None:
            self.max_estimate.observe_own(self.logical.value())
        gamma = self.intercluster.decide(round_index)
        self.logical.set_gamma(gamma)
        for estimator in self.estimators.values():
            estimator.set_gamma(gamma)
        self.stats.mode_by_round.append((round_index, gamma))
        if self._record_rounds and self.core.records:
            # The engine recorded the round before we chose gamma.
            self.core.records[-1].gamma = gamma
