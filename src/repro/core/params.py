"""Algorithm parameters and feasibility analysis.

This module turns the paper's parameter equations into code:

* **Eq. (5)** — the headline parameter choice: ``mu = c2 * rho``,
  ``c1 = 1/phi = ((1/2 - eps)/(1 + c2)) / rho`` with ``c2 = 32`` and
  ``eps = 1/4096``.
* **Eq. (10)/(11)** — the steady-state intra-cluster error ``E`` as the
  fixed point of the per-round error recursion ``e(r+1) = alpha*e(r) +
  beta`` and the constant phase durations ``tau1, tau2, tau3``.
* **Eq. (4)** — the ``zeta_max = (1+phi)(1+mu)`` stretch on the phase
  durations that keeps rounds proper when logical clocks run at their
  sped-up nominal rates.  (Eq. (5) omits this factor; we keep it, and
  fold it consistently into the fixed-point computation — see
  ``tau_stretch`` below.)
* **Corollary B.10 / Claim B.15** — steady-state errors for
  *unanimous* executions, where nominal rates span only ``[zeta,
  zeta*(1+rho)]`` and the contraction tail is ``O(rho*T)`` instead of
  ``O(mu*T)``.  This is the quantitative heart of Lemma 3.6.
* **Lemma 4.8** — the trigger slack ``delta_trigger = (k_stab + 5) E``
  and level width ``kappa = 3 * delta_trigger``.

Derivation note (fixed point).  Plugging constant phase durations

    tau1 = z * theta_g * E
    tau2 = z * theta_g * (E + d)
    tau3 = z * theta_g * (E + U) / phi

(``z`` = ``tau_stretch``) into the recursion of Corollary B.13 yields

    E = A(theta_g) * E + (3*theta_g - 1) * U
        + (1 - 1/theta_g) * z * theta_g * ((2 + 1/phi) * E + d + U/phi)

with ``A(theta) = (2 theta^2 + 5 theta - 5) / (2 (theta + 1))`` the
approximate-agreement contraction factor.  Collecting the ``E`` terms
gives ``alpha = A(theta_g) + z * (theta_g - 1) * (2 + 1/phi)`` and
``beta = (3*theta_g - 1) U + z (theta_g - 1)(d + U/phi)``; with
``z = 1`` these are *exactly* the printed Eq. (11).  Feasibility
requires ``alpha < 1``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.errors import ParameterError

#: Eq. (5) constants.
PAPER_C2 = 32.0
PAPER_EPS = 1.0 / 4096.0


def contraction_factor(theta: float) -> float:
    """The Lynch–Welch per-round contraction ``(2θ²+5θ−5)/(2(θ+1))``.

    For ``theta -> 1`` this tends to ``1/2``: one approximate-agreement
    step halves the pulse diameter (plus additive noise terms).
    """
    if theta < 1.0:
        raise ParameterError(f"theta must be >= 1: {theta!r}")
    return (2 * theta * theta + 5 * theta - 5) / (2 * (theta + 1))


@dataclass(frozen=True)
class Parameters:
    """All constants of the FTGCS algorithm, validated for feasibility.

    Instances are immutable; use the classmethod constructors
    (:meth:`paper`, :meth:`practical`, :meth:`custom`) rather than the
    raw dataclass constructor so derived values stay consistent.

    Attributes (model):
        rho: hardware clock drift bound (rates in ``[1, 1+rho]``).
        d: maximum message delay.
        u: delay uncertainty (delays in ``[d-u, d]``).
        f: Byzantine faults tolerated per cluster.
        cluster_size: nodes per cluster ``k >= 3f + 1``.

    Attributes (algorithm, Eq. (5)):
        c1: phase-3 stretch, ``Theta(1/rho)``; ``phi = 1/c1``.
        c2: fast-mode boost factor; ``mu = c2 * rho``.
        mu, phi: Eq. (2) rate-control constants.
        tau_stretch: the Eq. (4) ``zeta_max`` factor on phase lengths.

    Attributes (derived, Eq. (10)/(11)):
        theta_g: ``(1+rho)(1+mu)`` — max nominal rate envelope.
        alpha, beta: error recursion coefficients; ``alpha < 1``.
        cap_e: steady-state intra-cluster error ``E = beta/(1-alpha)``.
        tau1, tau2, tau3, round_length: constant round structure.

    Attributes (intercluster, Lemma 4.8 / Theorem C.3):
        k_stab: unanimity lead rounds ``k`` of Lemma 3.6 (``O(1)``).
        delta_trigger: trigger slack ``delta = (k_stab + 5) E``.
        kappa: GCS level width ``3 * delta_trigger``.
        c_global: the "sufficiently large constant" of Theorem C.3.
    """

    rho: float
    d: float
    u: float
    f: int
    cluster_size: int
    c1: float
    c2: float
    eps: float
    mu: float
    phi: float
    tau_stretch: float
    theta_g: float
    theta_u: float
    zeta_max: float
    theta_max: float
    alpha: float
    beta: float
    cap_e: float
    tau1: float
    tau2: float
    tau3: float
    round_length: float
    k_stab: int
    delta_trigger: float
    kappa: float
    c_global: float

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def custom(cls, rho: float, d: float, u: float, f: int,
               cluster_size: int | None = None, *,
               c1: float, c2: float, eps: float = float("nan"),
               k_stab: int = 4, c_global: float = 8.0,
               use_tau_stretch: bool = True) -> "Parameters":
        """Build parameters from explicit ``c1``/``c2``.

        This is the fully general constructor used by ablations; the
        :meth:`paper` and :meth:`practical` presets delegate here.
        """
        if rho <= 0:
            raise ParameterError(f"rho must be positive: {rho!r}")
        if d <= 0:
            raise ParameterError(f"d must be positive: {d!r}")
        if not 0 <= u <= d:
            raise ParameterError(f"need 0 <= U <= d: U={u!r}, d={d!r}")
        if f < 0:
            raise ParameterError(f"f must be non-negative: {f!r}")
        if cluster_size is None:
            cluster_size = 3 * f + 1
        if cluster_size < 3 * f + 1:
            raise ParameterError(
                f"cluster_size={cluster_size!r} violates k >= 3f+1 "
                f"with f={f!r}")
        if c1 <= 1:
            raise ParameterError(
                f"c1 must exceed 1 so that phi = 1/c1 < 1: {c1!r}")
        if c2 <= 0:
            raise ParameterError(f"c2 must be positive: {c2!r}")
        if k_stab < 0:
            raise ParameterError(f"k_stab must be >= 0: {k_stab!r}")

        mu = c2 * rho
        phi = 1.0 / c1
        theta_g = (1.0 + rho) * (1.0 + mu)
        theta_u = 1.0 + rho
        zeta_max = (1.0 + phi) * (1.0 + mu)
        theta_max = (1.0 + 2.0 * phi / (1.0 - phi)) * (1.0 + mu) * (1.0 + rho)
        z = zeta_max if use_tau_stretch else 1.0

        alpha = (contraction_factor(theta_g)
                 + z * (theta_g - 1.0) * (2.0 + c1))
        beta = ((3.0 * theta_g - 1.0) * u
                + z * (theta_g - 1.0) * (d + u * c1))
        if alpha >= 1.0:
            raise ParameterError(
                f"infeasible parameters: alpha={alpha:.6f} >= 1 "
                f"(rho={rho}, c1={c1}, c2={c2}); reduce rho, c1, or c2")
        cap_e = beta / (1.0 - alpha)

        tau1 = z * theta_g * cap_e
        tau2 = z * theta_g * (cap_e + d)
        tau3 = z * theta_g * (cap_e + u) * c1
        round_length = tau1 + tau2 + tau3

        delta_trigger = (k_stab + 5) * cap_e
        kappa = 3.0 * delta_trigger

        return cls(
            rho=rho, d=d, u=u, f=f, cluster_size=cluster_size,
            c1=c1, c2=c2, eps=eps, mu=mu, phi=phi, tau_stretch=z,
            theta_g=theta_g, theta_u=theta_u, zeta_max=zeta_max,
            theta_max=theta_max, alpha=alpha, beta=beta, cap_e=cap_e,
            tau1=tau1, tau2=tau2, tau3=tau3, round_length=round_length,
            k_stab=k_stab, delta_trigger=delta_trigger, kappa=kappa,
            c_global=c_global,
        )

    @classmethod
    def paper(cls, rho: float, d: float, u: float, f: int,
              cluster_size: int | None = None, *,
              k_stab: int = 4, c_global: float = 8.0) -> "Parameters":
        """The exact Eq. (5) choice: ``c2=32``, ``eps=1/4096``.

        Feasible only for very small ``rho`` (roughly ``rho < 4e-6``
        with ``d = 1``): Eq. (5) tunes ``alpha`` to ``1 - eps`` with
        ``eps = 1/4096``, so the lower-order ``O(rho)`` terms must fit
        under ``eps``.  Use :meth:`practical` for simulation-scale
        drifts.
        """
        if rho <= 0:
            raise ParameterError(f"rho must be positive: {rho!r}")
        c1 = (0.5 - PAPER_EPS) / ((1.0 + PAPER_C2) * rho)
        return cls.custom(rho, d, u, f, cluster_size, c1=c1, c2=PAPER_C2,
                          eps=PAPER_EPS, k_stab=k_stab, c_global=c_global)

    @classmethod
    def practical(cls, rho: float, d: float, u: float, f: int,
                  cluster_size: int | None = None, *,
                  c2: float = 32.0, eps: float = 0.05,
                  k_stab: int = 4, c_global: float = 8.0) -> "Parameters":
        """Eq. (5) structure with moderate ``eps`` for simulation.

        Keeps every structural relation (``mu = c2*rho``, ``phi = 1/c1``,
        ``c1 = ((1/2 - eps)/(1+c2))/rho``) but uses a larger ``eps`` so
        the fixed point exists for realistic drifts (``rho ~ 1e-4``)
        and rounds stay short enough to simulate thousands of them.
        """
        if not 0 < eps < 0.5:
            raise ParameterError(f"need 0 < eps < 1/2: {eps!r}")
        if rho <= 0:
            raise ParameterError(f"rho must be positive: {rho!r}")
        c1 = (0.5 - eps) / ((1.0 + c2) * rho)
        return cls.custom(rho, d, u, f, cluster_size, c1=c1, c2=c2,
                          eps=eps, k_stab=k_stab, c_global=c_global)

    def with_overrides(self, **changes) -> "Parameters":
        """Return a copy with raw field overrides (expert use only)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # Derived bounds
    # ------------------------------------------------------------------

    @property
    def n_trim(self) -> int:
        """Values trimmed from each end of the pulse multiset (= f)."""
        return self.f

    def unanimous_steady_state(self, mode: str) -> float:
        """Steady-state pulse diameter for a unanimous cluster.

        Corollary B.10 with ``theta = theta_u = 1 + rho`` and speedup
        ``zeta`` = ``(1+phi)`` (``mode='slow'``) or ``(1+phi)(1+mu)``
        (``mode='fast'``): the fixed point of

            e <- A(theta_u) e + (3 theta_u - 1) U
                 + (1/zeta)(1 - 1/theta_u) T

        where ``T`` is the *general* (shared-schedule) round length.
        The point of Lemma 3.6: this is ``O(rho * T)``-sized, far below
        the general ``E`` which absorbs ``O(mu)`` rate disagreement.
        """
        if mode == "slow":
            zeta = 1.0 + self.phi
        elif mode == "fast":
            zeta = (1.0 + self.phi) * (1.0 + self.mu)
        else:
            raise ParameterError(f"mode must be 'fast' or 'slow': {mode!r}")
        a_u = contraction_factor(self.theta_u)
        tail = ((3.0 * self.theta_u - 1.0) * self.u
                + (1.0 / zeta) * (1.0 - 1.0 / self.theta_u)
                * self.round_length)
        if a_u >= 1.0:
            raise ParameterError("unanimous contraction factor >= 1")
        return tail / (1.0 - a_u)

    def intra_skew_bound(self) -> float:
        """Rigorous intra-cluster skew bound (Lemma B.8 form).

        ``theta_max * E + (theta_max - 1) * T`` where ``theta_max`` is
        the Eq. (6) worst-case logical rate.  This holds for *all*
        proper executions, including phase-3 maximal corrections.
        """
        return (self.theta_max * self.cap_e
                + (self.theta_max - 1.0) * self.round_length)

    def intra_skew_bound_paper(self) -> float:
        """The bound as printed in Corollary 3.2: ``2 * theta_g * E``."""
        return 2.0 * self.theta_g * self.cap_e

    def estimate_error_bound(self) -> float:
        """Corollary 3.5: observer estimate error ``|L~ - L_v| <= E``."""
        return self.cap_e

    def gcs_effective_rho(self) -> float:
        """Proposition 4.11: effective drift ``(1+phi)(1+mu/4) - 1``."""
        return (1.0 + self.phi) * (1.0 + 0.25 * self.mu) - 1.0

    def gcs_effective_mu(self) -> float:
        """Proposition 4.11: effective boost ``(1+phi)(1+7mu/8) - 1``."""
        return (1.0 + self.phi) * (1.0 + 0.875 * self.mu) - 1.0

    def gcs_base(self) -> float:
        """The GCS logarithm base ``sigma = mu_eff / rho_eff`` (> 1)."""
        return self.gcs_effective_mu() / self.gcs_effective_rho()

    def local_skew_levels(self, global_skew: float) -> int:
        """Levels ``s`` needed to cover ``global_skew`` (Thm 4.10).

        The explicit form we use for the ``O(kappa log_sigma S)`` bound:
        ``s* = max(1, ceil(log_sigma(S / kappa)))``.
        """
        if global_skew <= self.kappa:
            return 1
        sigma = self.gcs_base()
        if sigma <= 1.0:
            raise ParameterError(
                "GCS base <= 1: effective mu must exceed effective rho")
        return max(1, math.ceil(math.log(global_skew / self.kappa)
                                / math.log(sigma)))

    def local_skew_bound(self, global_skew: float) -> float:
        """Cluster-level local skew bound ``2 * kappa * s*`` (Thm 4.10)."""
        return 2.0 * self.kappa * self.local_skew_levels(global_skew)

    def node_local_skew_bound(self, global_skew: float) -> float:
        """Node-level bound (Theorem 1.1 proof): cluster bound plus the
        two intra-cluster detours ``|L_v - L_B| + |L_C - L_w|``."""
        return self.local_skew_bound(global_skew) + 2.0 * self.intra_skew_bound()

    def global_skew_bound(self, diameter: int) -> float:
        """Theorem C.3: global skew ``O(delta * D)``; explicit constant
        ``c_global * delta_trigger * (D + 1)``."""
        return self.c_global * self.delta_trigger * (diameter + 1)

    def summary(self) -> str:
        """Human-readable multi-line parameter dump for reports."""
        lines = [
            f"rho={self.rho:g} d={self.d:g} U={self.u:g} f={self.f} "
            f"k={self.cluster_size}",
            f"c1={self.c1:g} c2={self.c2:g} mu={self.mu:g} phi={self.phi:g}",
            f"alpha={self.alpha:.6f} beta={self.beta:.6g} E={self.cap_e:.6g}",
            f"tau=({self.tau1:.6g}, {self.tau2:.6g}, {self.tau3:.6g}) "
            f"T={self.round_length:.6g}",
            f"delta_trigger={self.delta_trigger:.6g} kappa={self.kappa:.6g} "
            f"k_stab={self.k_stab}",
        ]
        return "\n".join(lines)
