"""Event primitives for the discrete-event kernel.

An :class:`Event` is a scheduled callback with a firing time.  Events
are ordered by ``(time, seq)`` where ``seq`` is a monotonically
increasing sequence number assigned at scheduling time; this makes
executions fully deterministic (FIFO among simultaneous events).

Cancellation is *lazy*: cancelling marks the event and the kernel skips
it when popped.  This keeps the priority queue a plain binary heap with
O(log n) scheduling.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable


class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Absolute (Newtonian) simulation time at which the event fires.
    seq:
        Tie-breaking sequence number; earlier-scheduled events fire
        first among events with equal ``time``.
    """

    __slots__ = ("time", "seq", "_callback", "_args", "_cancelled")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., None], args: tuple[Any, ...]):
        self.time = time
        self.seq = seq
        self._callback = callback
        self._args = args
        self._cancelled = False

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped."""
        self._cancelled = True
        # Drop references eagerly so cancelled events do not pin large
        # object graphs while they sit in the heap awaiting lazy removal.
        self._callback = _noop
        self._args = ()

    def fire(self) -> None:
        """Invoke the callback (kernel use only)."""
        self._callback(*self._args)

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "pending"
        return f"Event(t={self.time:.6g}, seq={self.seq}, {state})"


def _noop(*_args: Any) -> None:
    return None


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) events."""
        return self._live

    def push(self, time: float, callback: Callable[..., None],
             args: tuple[Any, ...] = ()) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``."""
        event = Event(time, self._seq, callback, args)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event (lazy removal)."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def pop(self) -> Event | None:
        """Pop and return the next live event, or ``None`` if empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            if not event.cancelled:
                self._live -= 1
                return event
        return None

    def peek_time(self) -> float | None:
        """Return the firing time of the next live event, or ``None``."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0].time

    def drain(self) -> Iterable[Event]:
        """Pop live events until the queue is empty (testing helper)."""
        while True:
            event = self.pop()
            if event is None:
                return
            yield event
