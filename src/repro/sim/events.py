"""Event primitives for the discrete-event kernel.

An :class:`Event` is a scheduled callback with a firing time.  The heap
holds lightweight ``(time, seq, event)`` tuples where ``seq`` is a
monotonically increasing sequence number assigned at scheduling time;
this makes executions fully deterministic (FIFO among simultaneous
events) while keeping heap comparisons in C (tuple comparison) instead
of calling a Python ``__lt__`` per sift step.

Cancellation is *lazy*: cancelling marks the event and the kernel skips
it when popped.  To keep long runs bounded, the queue *compacts* itself
whenever cancelled entries outnumber live ones (heavy alarm
rescheduling — e.g. ``LogicalClock.set_delta`` storms — would otherwise
grow the heap without bound).  Compaction rewrites the heap list *in
place* so kernel loops holding a local alias stay valid.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable

#: Heaps smaller than this are never compacted — the bookkeeping would
#: cost more than the garbage it reclaims.
COMPACT_MIN_SIZE = 64


class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Absolute (Newtonian) simulation time at which the event fires.
    seq:
        Tie-breaking sequence number; earlier-scheduled events fire
        first among events with equal ``time``.
    interval:
        ``None`` for one-shot events.  Repeating events (see
        :meth:`~repro.sim.kernel.Simulator.call_repeating`) carry their
        period here and are re-armed by the kernel after each firing,
        reusing this object instead of allocating a new one per tick.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "fired",
                 "interval")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., None], args: tuple[Any, ...]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self.interval: float | None = None

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped."""
        self.cancelled = True
        # Drop references eagerly so cancelled events do not pin large
        # object graphs while they sit in the heap awaiting removal.
        self.callback = _noop
        self.args = ()

    def fire(self) -> None:
        """Invoke the callback (kernel use only)."""
        self.callback(*self.args)

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else (
            "fired" if self.fired else "pending")
        return f"Event(t={self.time:.6g}, seq={self.seq}, {state})"


def _noop(*_args: Any) -> None:
    return None


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects.

    Heap entries are ``(time, seq, event)`` tuples; ``_live`` counts
    entries whose event is neither cancelled nor popped.
    """

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) events."""
        return self._live

    @property
    def heap_size(self) -> int:
        """Physical heap length including lazily-cancelled entries."""
        return len(self._heap)

    def push(self, time: float, callback: Callable[..., None],
             args: tuple[Any, ...] = ()) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``."""
        seq = self._seq
        event = Event(time, seq, callback, args)
        self._seq = seq + 1
        self._live += 1
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def requeue(self, event: Event, time: float) -> None:
        """Re-arm a popped (fired) event at ``time``, reusing the object.

        Kernel use only, for repeating events: the event must not be in
        the heap.  A fresh ``seq`` keeps FIFO determinism among
        simultaneous events.
        """
        seq = self._seq
        self._seq = seq + 1
        event.time = time
        event.seq = seq
        event.fired = False
        self._live += 1
        heapq.heappush(self._heap, (time, seq, event))

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event (lazy removal).

        Safe to call twice and safe to call with a *stale* reference to
        an event that already fired: fired events are no longer in the
        heap, so only the cancelled flag is set (which also stops a
        repeating event from re-arming) and the live count is untouched.
        """
        if event.cancelled:
            return
        if event.fired:
            event.cancelled = True
            return
        event.cancel()
        self._live -= 1
        heap = self._heap
        if len(heap) >= COMPACT_MIN_SIZE and len(heap) > 2 * self._live:
            # In-place rewrite: aliases of the heap list stay valid.
            heap[:] = [entry for entry in heap if not entry[2].cancelled]
            heapq.heapify(heap)

    def pop(self) -> Event | None:
        """Pop and return the next live event, or ``None`` if empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[2]
            if not event.cancelled:
                event.fired = True
                self._live -= 1
                return event
        return None

    def peek_time(self) -> float | None:
        """Return the firing time of the next live event, or ``None``."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0][0]

    def drain(self) -> Iterable[Event]:
        """Pop live events until the queue is empty (testing helper)."""
        while True:
            event = self.pop()
            if event is None:
                return
            yield event
