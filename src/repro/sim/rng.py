"""Deterministic named random streams.

Every stochastic component of a simulation (per-link delays, per-node
clock drift walks, Byzantine strategies, fault placement, workload
generators) draws from its own named substream derived from one master
seed.  This gives two properties that matter for reproducing a paper:

* **Replay** — the same configuration and master seed produce the exact
  same execution, event for event.
* **Isolation** — adding a new random consumer (say, one more fault
  strategy) does not perturb the draws seen by unrelated components,
  because streams are keyed by name rather than by draw order.

Streams use :class:`random.Random` (Mersenne twister), which is plenty
for simulation workloads and keeps the core library free of third-party
dependencies.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit stream seed from ``master_seed`` and ``name``.

    Uses BLAKE2b over the canonical string ``"{master_seed}/{name}"`` so
    the mapping is stable across Python versions and processes (unlike
    the builtin ``hash``).
    """
    digest = hashlib.blake2b(
        f"{master_seed}/{name}".encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class RngRegistry:
    """Factory for named, deterministic random streams.

    Example
    -------
    >>> reg = RngRegistry(master_seed=42)
    >>> a1 = reg.stream("delays/link:0-1").random()
    >>> a2 = RngRegistry(master_seed=42).stream("delays/link:0-1").random()
    >>> a1 == a2
    True
    """

    def __init__(self, master_seed: int = 0) -> None:
        self._master_seed = int(master_seed)
        self._streams: dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        """The master seed all streams are derived from."""
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object, so a component that stashes the stream and one that
        re-fetches it by name observe one shared draw sequence.
        """
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self._master_seed, name))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngRegistry":
        """Create a child registry with an independent derived seed.

        Useful for Monte Carlo repetitions: ``registry.fork(f"rep{i}")``
        yields a fully independent yet reproducible universe per
        repetition.
        """
        return RngRegistry(derive_seed(self._master_seed, f"fork/{name}"))
