"""The discrete-event simulation kernel.

:class:`Simulator` owns the global event queue and the current
Newtonian time.  Components schedule callbacks either after a delay
(:meth:`Simulator.call_in`), at an absolute time
(:meth:`Simulator.call_at`), or on a fixed period
(:meth:`Simulator.call_repeating`).  The kernel processes events in
deterministic ``(time, seq)`` order.

Time never flows backwards: scheduling strictly in the past raises
:class:`~repro.errors.SimulationError`.  Scheduling "now" is allowed and
fires after all currently queued events with the same timestamp.

The :meth:`Simulator.run` loop is the hottest code in the library; it
works directly on the queue's tuple heap with every name bound to a
local, which roughly halves per-event dispatch cost versus attribute
lookups on each iteration.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.events import Event, EventQueue

#: ``Event.__new__`` bound once: the hot schedulers below build events
#: with inline attribute stores instead of paying a Python-level
#: ``__init__`` call per event (~30% of scheduling cost).
_new_event = Event.__new__

#: Tolerance for "effectively now" scheduling.  Logical-clock inversion
#: can produce firing times a few ulps before the current time; those
#: are clamped to the current time rather than rejected.
PAST_TOLERANCE = 1e-9


class Simulator:
    """Deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.call_in(1.5, fired.append, "a")
    >>> _ = sim.call_at(1.0, fired.append, "b")
    >>> sim.run(until=2.0)
    >>> fired
    ['b', 'a']
    >>> sim.now
    2.0
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._events_processed = 0
        self._running = False
        #: Time bound of the active :meth:`run` call (``inf`` outside
        #: one).  Batch consumers (the batched network delivery path)
        #: read it so a single kernel wake-up never executes work past
        #: the caller's horizon.
        self._horizon = math.inf
        #: Work-unit budget of the active
        #: :meth:`run_until_idle(max_events=...)` call (``inf``
        #: otherwise).  Batch consumers decrement it per delivered
        #: unit and stop draining at zero, so the runaway-loop guard
        #: still fires when a send-on-delivery cascade never returns
        #: to the kernel loop.
        self._batch_budget = math.inf

    @property
    def now(self) -> float:
        """Current Newtonian simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events fired so far (for profiling).

        Accounting is deferred inside :meth:`run` and
        :meth:`run_until_idle`: their hot loops count into a local and
        flush once on exit, so a callback reading this *during* a run
        sees the pre-run value.  Reads between runs (the supported
        profiling use) are always exact; drive the kernel via
        :meth:`step` if per-event accuracy mid-run matters.
        """
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)

    def call_at(self, time: float, callback: Callable[..., None],
                *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``.

        Raises
        ------
        SimulationError
            If ``time`` lies more than :data:`PAST_TOLERANCE` in the
            past.
        """
        if time < self._now:
            if self._now - time > PAST_TOLERANCE:
                raise SimulationError(
                    f"cannot schedule at t={time!r}: current time is "
                    f"t={self._now!r}")
            time = self._now
        # Inlined EventQueue.push: scheduling is as hot as dispatch.
        # Keep the stores in sync with Event.__slots__ and the
        # twin site in call_at/call_in.
        queue = self._queue
        seq = queue._seq
        event = _new_event(Event)
        event.time = time
        event.seq = seq
        event.callback = callback
        event.args = args
        event.cancelled = False
        event.fired = False
        event.interval = None
        queue._seq = seq + 1
        queue._live += 1
        heapq.heappush(queue._heap, (time, seq, event))
        return event

    def call_in(self, delay: float, callback: Callable[..., None],
                *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` time units."""
        if delay < 0:
            if delay < -PAST_TOLERANCE:
                raise SimulationError(f"negative delay: {delay!r}")
            delay = 0.0
        # Inlined EventQueue.push: scheduling is as hot as dispatch.
        # Keep the stores in sync with Event.__slots__ and the
        # twin site in call_at/call_in.
        queue = self._queue
        time = self._now + delay
        seq = queue._seq
        event = _new_event(Event)
        event.time = time
        event.seq = seq
        event.callback = callback
        event.args = args
        event.cancelled = False
        event.fired = False
        event.interval = None
        queue._seq = seq + 1
        queue._live += 1
        heapq.heappush(queue._heap, (time, seq, event))
        return event

    def call_repeating(self, interval: float,
                       callback: Callable[..., None], *args: Any,
                       first_in: float | None = None) -> Event:
        """Schedule ``callback(*args)`` every ``interval`` time units.

        The first firing happens after ``first_in`` (default:
        ``interval``); subsequent firings re-arm the *same*
        :class:`Event` object, so periodic samplers cost zero
        allocations per tick.  Cancel with :meth:`cancel` — also valid
        from inside the callback, which stops the re-arming.
        """
        if interval <= 0:
            raise SimulationError(
                f"repeating interval must be positive: {interval!r}")
        delay = interval if first_in is None else first_in
        if delay < 0:
            if delay < -PAST_TOLERANCE:
                raise SimulationError(f"negative delay: {delay!r}")
            delay = 0.0
        event = self._queue.push(self._now + delay, callback, args)
        event.interval = interval
        return event

    # ------------------------------------------------------------------
    # Batch-consumer API (internal; used by the batched network path)
    # ------------------------------------------------------------------

    def alloc_seq(self) -> int:
        """Consume one scheduling sequence number without queueing.

        The batched network delivery path assigns every message the
        sequence number the legacy one-event-per-message path would
        have given its delivery event, so tie-breaking among
        simultaneous events stays bit-identical whether batching is on
        or off.  The number is burned either way — callers must use it
        (in their own side queue) or accept the gap.  (The network's
        per-message hot path inlines this body; this method is the
        documented contract and the entry point for other batch
        consumers.)
        """
        queue = self._queue
        seq = queue._seq
        queue._seq = seq + 1
        return seq

    def call_at_key(self, time: float, seq: int,
                    callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback`` at an explicit ``(time, seq)`` key.

        Internal plumbing for batch consumers: a wake-up event co-keyed
        with an :meth:`alloc_seq`-numbered side-queue entry fires at
        exactly the heap position the legacy per-entry event would
        have, so interleaving with every other kernel event is
        preserved.  ``seq`` must come from :meth:`alloc_seq` (reusing a
        live event's key is undefined).
        """
        queue = self._queue
        event = _new_event(Event)
        event.time = time
        event.seq = seq
        event.callback = callback
        event.args = args
        event.cancelled = False
        event.fired = False
        event.interval = None
        queue._live += 1
        heapq.heappush(queue._heap, (time, seq, event))
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (safe to call twice or after it
        fired; cancelling a repeating event stops future firings)."""
        self._queue.cancel(event)

    def step(self) -> bool:
        """Fire the single next event.

        A batched-network flush event fired through here delivers at
        most one message (the batch budget is pinned to one work unit
        for the duration), so step-driven loops keep their per-event
        granularity under the batched delivery path too.

        Returns
        -------
        bool
            ``True`` if an event fired, ``False`` if the queue is empty.
        """
        queue = self._queue
        event = queue.pop()
        if event is None:
            return False
        prev_budget = self._batch_budget
        self._batch_budget = 1.0
        try:
            self._now = event.time
            self._events_processed += 1
            event.callback(*event.args)
        finally:
            self._batch_budget = prev_budget
        interval = event.interval
        if interval is not None and not event.cancelled:
            queue.requeue(event, event.time + interval)
        return True

    def run(self, until: float) -> None:
        """Process all events with ``time <= until``, then set ``now``.

        The kernel time is advanced to exactly ``until`` afterwards even
        when no event fires at that instant, so samplers observing
        ``sim.now`` after :meth:`run` see the requested horizon.
        """
        if until < self._now:
            raise SimulationError(
                f"cannot run backwards: until={until!r} < now={self._now!r}")
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        # Save/restore the batch-consumer state: a `run` nested inside
        # a bounded `run_until_idle` (legal — only run-in-run is
        # blocked) must neither inherit the outer budget (work inside
        # a nested run never counted toward an outer bound, and an
        # exhausted budget would make zero-progress flush wake-ups
        # spin) nor clobber the outer horizon on exit.
        prev_horizon = self._horizon
        prev_budget = self._batch_budget
        self._horizon = until
        self._batch_budget = math.inf
        # Hot loop: operate on the queue internals with local bindings.
        # Compaction rewrites the heap list in place, so `heap` stays a
        # valid alias across callbacks that cancel events.
        queue = self._queue
        heap = queue._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        processed = 0
        try:
            while heap:
                entry = heappop(heap)
                time = entry[0]
                if time > until:
                    # Put the entry back (same seq, so order is
                    # preserved); cheaper than peeking every iteration.
                    heappush(heap, entry)
                    break
                event = entry[2]
                if event.cancelled:
                    continue
                event.fired = True
                queue._live -= 1
                self._now = time
                processed += 1
                event.callback(*event.args)
                interval = event.interval
                if interval is not None and not event.cancelled:
                    time += interval
                    seq = queue._seq
                    queue._seq = seq + 1
                    event.time = time
                    event.seq = seq
                    event.fired = False
                    queue._live += 1
                    heappush(heap, (time, seq, event))
            self._now = until
        finally:
            self._events_processed += processed
            self._running = False
            self._horizon = prev_horizon
            self._batch_budget = prev_budget

    def run_until_idle(self, max_events: int | None = None) -> int:
        """Process events until the queue is empty.

        Parameters
        ----------
        max_events:
            Optional safety bound on *work units* — kernel events plus
            batched network deliveries (which execute inside a single
            flush event).  Once the budget is spent with work still
            queued, raises :class:`~repro.errors.SimulationError` so
            runaway self-scheduling loops surface as errors rather
            than hangs, whether they schedule events or send messages.
            A run needing exactly ``max_events`` units completes.

        Returns
        -------
        int
            Number of kernel events processed by this call.
        """
        # Same locals-bound hot loop as :meth:`run` (see comment there);
        # `step()` per event would double the dispatch cost.  The
        # budget lives in ``self._batch_budget`` (re-read per
        # iteration) only when a bound was requested, so the common
        # unbounded path pays nothing for it.
        queue = self._queue
        heap = queue._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        fired = 0
        bounded = max_events is not None
        # Own budget and horizon for the duration (saved/restored so
        # nesting works like the pre-batching per-call counters: an
        # inner call never consumes — or disables — an outer bound,
        # and "until idle" means every pending delivery is due).
        prev_horizon = self._horizon
        prev_budget = self._batch_budget
        self._horizon = math.inf
        self._batch_budget = max_events if bounded else math.inf
        try:
            while heap:
                entry = heappop(heap)
                event = entry[2]
                if event.cancelled:
                    continue
                if bounded:
                    if self._batch_budget <= 0:
                        # A live event remains but the budget is spent.
                        # Push the entry back (same seq, order
                        # preserved) so the queue state stays
                        # consistent.
                        heappush(heap, entry)
                        raise SimulationError(
                            f"run_until_idle exceeded "
                            f"max_events={max_events}")
                    self._batch_budget -= 1
                event.fired = True
                queue._live -= 1
                self._now = entry[0]
                fired += 1
                event.callback(*event.args)
                interval = event.interval
                if interval is not None and not event.cancelled:
                    time = event.time + interval
                    seq = queue._seq
                    queue._seq = seq + 1
                    event.time = time
                    event.seq = seq
                    event.fired = False
                    queue._live += 1
                    heappush(heap, (time, seq, event))
        finally:
            self._events_processed += fired
            self._horizon = prev_horizon
            self._batch_budget = prev_budget
        return fired
