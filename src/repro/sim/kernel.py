"""The discrete-event simulation kernel.

:class:`Simulator` owns the global event queue and the current
Newtonian time.  Components schedule callbacks either after a delay
(:meth:`Simulator.call_in`) or at an absolute time
(:meth:`Simulator.call_at`).  The kernel processes events in
deterministic ``(time, seq)`` order.

Time never flows backwards: scheduling strictly in the past raises
:class:`~repro.errors.SimulationError`.  Scheduling "now" is allowed and
fires after all currently queued events with the same timestamp.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.events import Event, EventQueue

#: Tolerance for "effectively now" scheduling.  Logical-clock inversion
#: can produce firing times a few ulps before the current time; those
#: are clamped to the current time rather than rejected.
PAST_TOLERANCE = 1e-9


class Simulator:
    """Deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.call_in(1.5, fired.append, "a")
    >>> _ = sim.call_at(1.0, fired.append, "b")
    >>> sim.run(until=2.0)
    >>> fired
    ['b', 'a']
    >>> sim.now
    2.0
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._events_processed = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current Newtonian simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events fired so far (for profiling)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live events still queued."""
        return len(self._queue)

    def call_at(self, time: float, callback: Callable[..., None],
                *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``.

        Raises
        ------
        SimulationError
            If ``time`` lies more than :data:`PAST_TOLERANCE` in the
            past.
        """
        if time < self._now:
            if self._now - time > PAST_TOLERANCE:
                raise SimulationError(
                    f"cannot schedule at t={time!r}: current time is "
                    f"t={self._now!r}")
            time = self._now
        return self._queue.push(time, callback, args)

    def call_in(self, delay: float, callback: Callable[..., None],
                *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` time units."""
        if delay < 0:
            if delay < -PAST_TOLERANCE:
                raise SimulationError(f"negative delay: {delay!r}")
            delay = 0.0
        return self._queue.push(self._now + delay, callback, args)

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (safe to call twice)."""
        self._queue.cancel(event)

    def step(self) -> bool:
        """Fire the single next event.

        Returns
        -------
        bool
            ``True`` if an event fired, ``False`` if the queue is empty.
        """
        event = self._queue.pop()
        if event is None:
            return False
        self._now = event.time
        self._events_processed += 1
        event.fire()
        return True

    def run(self, until: float) -> None:
        """Process all events with ``time <= until``, then set ``now``.

        The kernel time is advanced to exactly ``until`` afterwards even
        when no event fires at that instant, so samplers observing
        ``sim.now`` after :meth:`run` see the requested horizon.
        """
        if until < self._now:
            raise SimulationError(
                f"cannot run backwards: until={until!r} < now={self._now!r}")
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        try:
            queue = self._queue
            while True:
                next_time = queue.peek_time()
                if next_time is None or next_time > until:
                    break
                event = queue.pop()
                assert event is not None
                self._now = event.time
                self._events_processed += 1
                event.fire()
            self._now = until
        finally:
            self._running = False

    def run_until_idle(self, max_events: int | None = None) -> int:
        """Process events until the queue is empty.

        Parameters
        ----------
        max_events:
            Optional safety bound; raises
            :class:`~repro.errors.SimulationError` when exceeded so
            runaway self-scheduling loops surface as errors rather than
            hangs.

        Returns
        -------
        int
            Number of events processed by this call.
        """
        fired = 0
        while self.step():
            fired += 1
            if max_events is not None and fired > max_events:
                raise SimulationError(
                    f"run_until_idle exceeded max_events={max_events}")
        return fired
