"""Discrete-event simulation substrate (kernel, events, RNG streams)."""

from repro.sim.events import Event, EventQueue
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry, derive_seed

__all__ = ["Event", "EventQueue", "Simulator", "RngRegistry", "derive_seed"]
