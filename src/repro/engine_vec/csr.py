"""CSR adjacency with empty-segment-safe neighbor reductions.

The vectorized engine's topology primitive: an undirected
:class:`~repro.topology.cluster_graph.ClusterGraph` flattened into the
standard compressed-sparse-row form (``indptr``/``indices`` over
*directed* slots, both directions of every edge).  Per-neighbor values
— clock estimates, delay draws — live in arrays aligned to the slot
order, and per-node aggregates come from ``ufunc.reduceat`` segment
reductions.

``reduceat`` needs care at degree-0 vertices: an empty segment makes
it return (or index past) a neighboring slot's value, so
:meth:`CSRAdjacency.segment_max`/``segment_min`` clip the offsets and
overwrite empty rows with the caller's identity fill.  Isolated
vertices therefore aggregate to ``fill`` (``-inf``/``+inf``), which
the vectorized trigger evaluation maps to "no neighbors: no trigger" —
the same answer :func:`repro.core.triggers.evaluate` gives.
"""

from __future__ import annotations

import numpy as np

from repro.topology.cluster_graph import ClusterGraph


class CSRAdjacency:
    """Directed-slot CSR view of an undirected cluster graph.

    Attributes
    ----------
    num_nodes, num_edges:
        Vertex and *undirected* edge counts.
    edge_a, edge_b:
        Endpoint arrays of the undirected edges (length ``num_edges``)
        — the per-edge view skew measurements use.
    row, indices, indptr:
        The CSR triplet over ``2 * num_edges`` directed slots: slot
        ``k`` means "node ``row[k]`` sees neighbor ``indices[k]``";
        node ``i`` owns slots ``indptr[i]:indptr[i+1]``.
    """

    def __init__(self, graph: ClusterGraph) -> None:
        n = graph.num_clusters
        edges = graph.edges
        m = len(edges)
        self.num_nodes = n
        self.num_edges = m
        if m:
            pairs = np.asarray(edges, dtype=np.int64)
            ea, eb = pairs[:, 0], pairs[:, 1]
        else:
            ea = np.zeros(0, dtype=np.int64)
            eb = np.zeros(0, dtype=np.int64)
        self.edge_a = ea
        self.edge_b = eb
        src = np.concatenate([ea, eb])
        dst = np.concatenate([eb, ea])
        order = np.argsort(src, kind="stable")
        self.row = src[order]
        self.indices = dst[order]
        self.indptr = np.searchsorted(self.row, np.arange(n + 1))

    @property
    def num_slots(self) -> int:
        """Directed slot count (``2 * num_edges``)."""
        return int(self.indices.size)

    def gather(self, values: np.ndarray) -> np.ndarray:
        """Per-slot view of per-node ``values`` (``values[indices]``)."""
        return values[self.indices]

    def _segment_reduce(self, slot_values: np.ndarray, ufunc,
                        fill: float) -> np.ndarray:
        out = np.full(self.num_nodes, fill, dtype=np.float64)
        if slot_values.size == 0:
            return out
        starts = self.indptr[:-1]
        nonempty = self.indptr[1:] > starts
        # Clipped starts keep reduceat in-bounds for trailing empty
        # segments; their bogus outputs are masked out below.
        reduced = ufunc.reduceat(
            slot_values, np.minimum(starts, slot_values.size - 1))
        out[nonempty] = reduced[nonempty]
        return out

    def segment_max(self, slot_values: np.ndarray,
                    fill: float = -np.inf) -> np.ndarray:
        """Per-node max over its slots (``fill`` for degree-0 nodes)."""
        return self._segment_reduce(slot_values, np.maximum, fill)

    def segment_min(self, slot_values: np.ndarray,
                    fill: float = np.inf) -> np.ndarray:
        """Per-node min over its slots (``fill`` for degree-0 nodes)."""
        return self._segment_reduce(slot_values, np.minimum, fill)

    def edge_skew(self, values: np.ndarray) -> float:
        """Max ``|values[a] - values[b]|`` over undirected edges
        (0.0 on edge-free graphs — the local skew convention)."""
        if self.num_edges == 0:
            return 0.0
        return float(np.abs(values[self.edge_a]
                            - values[self.edge_b]).max())


__all__ = ["CSRAdjacency"]
