"""Vectorized round models of the round-structured protocols.

Each class here is the struct-of-arrays counterpart of one event-path
adapter in :mod:`repro.protocols`, registered in
:data:`VEC_PROTOCOLS` under the same protocol name.  A model consumes
the same :class:`~repro.core.protocol.BuildContext` the event engine
would (graph, params, rounds, seed, payload) and returns the same
:class:`~repro.core.protocol.ProtocolRunResult` shape; randomness
comes from :class:`~repro.engine_vec.engine.VecStreams`.

Equivalence contracts (enforced by
:mod:`repro.engine_vec.equivalence`, documented in API.md):

``srikanth_toueg`` / ``gcs_single``
    *Exact* on degenerate deterministic cells (``rho = 0``, ``u = 0``:
    every clock agrees forever, both engines report exactly ``0.0``),
    *tolerance* otherwise.  The tolerance covers the two engines'
    different measurement instants: the event kernel samples on a
    fixed wall-clock grid while the round model probes at round
    boundaries, so headline skews agree up to one sampling interval of
    drift plus the per-message jitter width (see
    ``st_tolerance``/``gcs_tolerance`` in the equivalence module).
``lynch_welch``
    Tolerance: the event path runs the full FTGCS intra-cluster
    machinery while the round model is the classic trimmed
    approximate-agreement recursion, so skews are compared against the
    shared analytic envelope ``params.intra_skew_bound()``.
``ftgcs``
    Envelope only: the vectorized port is the *cluster-round skeleton*
    (one state per cluster, trigger-driven mode selection, estimate
    error drawn within ``±E``), so both engines are held to the
    analytic bounds ``global_skew_bound(D)`` /
    ``local_skew_bound(...)`` rather than to each other.

Scale notes: per-round cost is O(slots) for the graph protocols and
O(n^2) for the cliques; the graph models run 1e5–1e6-node topologies
at interactive rates (experiment t17 measures rounds/s).
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.metrics import stabilization_time
from repro.core.protocol import BuildContext, ProtocolRunResult
from repro.engine_vec.csr import CSRAdjacency
from repro.engine_vec.engine import VecStreams, fast_trigger_mask
from repro.errors import ConfigError
from repro.faults.adversary import (
    CliqueAdversaryRuntime,
    VecAdversaryRuntime,
    get_adversary,
)


def _reject_unknown(mapping: dict, allowed: tuple, what: str,
                    name: str) -> None:
    unknown = sorted(set(mapping) - set(allowed))
    if unknown:
        raise ConfigError(
            f"{name} on the vectorized engine does not accept {what} "
            f"key(s) {unknown}; supported: {sorted(allowed)}")


def _spread(values: np.ndarray) -> float:
    if values.size == 0:
        return 0.0
    return float(values.max() - values.min())


def _injected_up_down(csr: CSRAdjacency, clocks: np.ndarray,
                      estimates: np.ndarray, offsets: np.ndarray,
                      keep: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """The masked-write half of per-round fault-vector injection:
    displaced estimates enter the trigger reductions, silenced slots
    drop out (the ``±inf`` fills make them neutral — a node with no
    surviving estimate comes out trigger-false, like degree 0)."""
    est = estimates + offsets
    up = csr.segment_max(np.where(keep, est, -np.inf)) - clocks
    down = clocks - csr.segment_min(np.where(keep, est, np.inf))
    return up, down


class VecRoundModel:
    """Shared plumbing: context, streams, result assembly."""

    name = ""

    def __init__(self, ctx: BuildContext) -> None:
        self.ctx = ctx
        self.streams = VecStreams(ctx.seed, self.name)

    def _adversary_model(self):
        """The resolved adversary model, or ``None``; models with no
        vectorized injection hook must keep ``ctx.adversary`` empty
        (the builder's ``supports_vectorized_faults`` check)."""
        if self.ctx.adversary is None:
            return None
        return get_adversary(**self.ctx.adversary)

    def _result(self, *, max_global: float, max_local: float,
                series: list, messages_sent: int, rounds: int,
                nodes: int, detail_extra: dict | None = None,
                with_stabilization: bool = True,
                adversary: dict | None = None) -> ProtocolRunResult:
        detail = {"engine": "vectorized", "rounds": rounds,
                  "nodes": nodes}
        if detail_extra:
            detail.update(detail_extra)
        stab = None
        if with_stabilization and series:
            stab = stabilization_time(
                [(t, local) for t, local, _ in series])
        return ProtocolRunResult(
            protocol=self.name, seed=self.ctx.seed,
            max_global_skew=max_global, max_local_skew=max_local,
            series=series, messages_sent=messages_sent,
            events_processed=rounds, stabilization_time=stab,
            adversary=adversary, detail=detail)


class VecGcsSingle(VecRoundModel):
    """Plain GCS, one vectorized step per broadcast period.

    Per round: per-slot neighbor estimates ``L[j] ± u/2`` (one uniform
    draw per directed slot from the ``delays`` stream), FT trigger via
    CSR segment max/min, then every clock advances one nominal period
    at ``rate * (1 + mu * gamma)``.  Payload mirrors the event
    adapter minus the Byzantine ``liars`` knob (per-victim phantom
    streams are inherently per-message; the event engine keeps that
    workload).
    """

    name = "gcs_single"

    _PAYLOAD = ("params", "until", "rate_spread", "sample_interval",
                "batched_delivery")

    def __init__(self, ctx: BuildContext) -> None:
        super().__init__(ctx)
        payload = dict(ctx.payload)
        if payload.get("liars"):
            raise ConfigError(
                "gcs_single liars are not supported on the vectorized "
                "engine (per-victim phantom messages are per-message "
                "state); use .adversary('equivocate', ...) or the "
                "event engine")
        payload.pop("liars", None)
        _reject_unknown(payload, self._PAYLOAD, "payload", self.name)
        try:
            self.params = payload["params"]
            until = payload["until"]
        except KeyError as missing:
            raise ConfigError(
                f"gcs_single needs payload[{missing.args[0]!r}]"
            ) from None
        if ctx.graph is None:
            raise ConfigError("gcs_single needs a topology")
        if ctx.config:
            _reject_unknown(ctx.config, (), "config", self.name)
        self.rate_spread = bool(payload.get("rate_spread", True))
        self.rounds = int(math.floor(
            until / self.params.period + 1e-9))
        self.csr = CSRAdjacency(ctx.graph)
        model = self._adversary_model()
        self.adv = None
        if model is not None:
            self.adv = VecAdversaryRuntime(
                model, self.csr, self.streams,
                default_amplitude=4.0 * self.params.kappa)

    def run(self) -> ProtocolRunResult:
        p = self.params
        csr = self.csr
        adv = self.adv
        n = csr.num_nodes
        ids = np.arange(n)
        if self.rate_spread:
            rate = 1.0 + p.rho * (ids % 2)
        else:
            rate = np.ones(n)
        clocks = np.zeros(n)
        delays = self.streams.stream("delays")
        series: list[tuple[float, float, float]] = []
        max_local = max_global = 0.0
        last_local = 0.0
        slots = csr.num_slots
        for r in range(1, self.rounds + 1):
            estimates = csr.gather(clocks)
            if p.u > 0.0 and slots:
                estimates = estimates + delays.uniform(
                    -p.u / 2.0, p.u / 2.0, slots)
            if adv is not None:
                def lookahead(offsets, keep):
                    up, down = _injected_up_down(csr, clocks, estimates,
                                                 offsets, keep)
                    gamma = fast_trigger_mask(
                        up, down, p.kappa, p.slack).astype(np.float64)
                    return adv.local_skew(
                        clocks + rate * (1.0 + p.mu * gamma) * p.period)

                offsets, keep = adv.round_vectors(
                    r, honest_local_skew=last_local,
                    evaluate=lookahead)
                up, down = _injected_up_down(csr, clocks, estimates,
                                             offsets, keep)
            else:
                up = csr.segment_max(estimates) - clocks
                down = clocks - csr.segment_min(estimates)
            gamma = fast_trigger_mask(up, down, p.kappa,
                                      p.slack).astype(np.float64)
            clocks = clocks + rate * (1.0 + p.mu * gamma) * p.period
            if adv is not None:
                local = adv.local_skew(clocks)
                global_ = adv.global_skew(clocks)
            else:
                local = csr.edge_skew(clocks)
                global_ = _spread(clocks)
            last_local = local
            series.append((r * p.period, local, global_))
            max_local = max(max_local, local)
            max_global = max(max_global, global_)
        return self._result(
            max_global=max_global, max_local=max_local, series=series,
            messages_sent=self.rounds * slots, rounds=self.rounds,
            nodes=n,
            adversary=adv.counters() if adv is not None else None)


class VecSrikanthToueg(VecRoundModel):
    """Propose-and-pull on a clique, one vectorized resync per round.

    Round ``r``: naive propose times from each correct clock's
    ``r * period`` boundary, one uniform ``[d - u, d]`` delay draw per
    ordered correct pair, the ``f + 1`` pull rule as a (few-step)
    fixed point over propose times, accept at the ``(n - f)``-th
    earliest proposal, clocks reset to ``r * period + d``.  Skew is
    probed just before the first accept (worst accumulated drift) and
    just after the last (resync quality), plus a final probe at the
    event adapter's ``(rounds + 1) * period`` horizon.
    """

    name = "srikanth_toueg"

    _PAYLOAD = ("params", "rounds", "silent_faults", "rate_spread",
                "sample_interval")
    #: Pull-rule fixed-point cap; relays only cascade when propose
    #: spreads exceed message delays, which a handful of sweeps covers.
    _MAX_RELAY_ITER = 4

    def __init__(self, ctx: BuildContext) -> None:
        super().__init__(ctx)
        payload = dict(ctx.payload)
        _reject_unknown(payload, self._PAYLOAD, "payload", self.name)
        try:
            self.params = payload["params"]
        except KeyError:
            raise ConfigError(
                "srikanth_toueg needs payload['params']") from None
        if ctx.config:
            _reject_unknown(ctx.config, (), "config", self.name)
        self.rounds = int(payload.get("rounds", ctx.rounds))
        self.silent_faults = int(payload.get("silent_faults", 0))
        if self.silent_faults > self.params.f:
            raise ConfigError(
                f"{self.silent_faults} silent faults exceed "
                f"f={self.params.f}")
        self.rate_spread = bool(payload.get("rate_spread", True))
        model = self._adversary_model()
        self.adv = None
        if model is not None:
            if self.silent_faults:
                raise ConfigError(
                    "compose either payload silent_faults or "
                    ".adversary(...), not both")
            # A faulty clique member displaces its per-receiver
            # arrival times; the amplitude default is the delay bound
            # d (the largest displacement a Byzantine proposer can
            # pass off as network latency).
            self.adv = CliqueAdversaryRuntime(
                model, self.params.n, self.params.f, self.streams,
                default_amplitude=self.params.d)

    def _resync(self, naive: np.ndarray, delay: np.ndarray,
                live: np.ndarray | None) -> np.ndarray:
        """One resync: relay fixed point, then quorum accept.  ``live``
        holds the speaking faulty members' arrival rows ``(k, count)``
        (``None``: none speak — exactly the silent/absent case, so the
        no-adversary path and a silent adversary are bit-identical)."""
        p = self.params
        f = p.f
        count = naive.size
        extra = 0 if live is None else live.shape[0]
        propose = naive
        if count - 1 + extra >= f + 1:
            for _ in range(self._MAX_RELAY_ITER):
                arrivals = propose[:, None] + delay
                np.fill_diagonal(arrivals, np.inf)
                pool = arrivals if extra == 0 \
                    else np.vstack([arrivals, live])
                kth = np.partition(pool, f, axis=0)[f]
                pulled = np.minimum(naive, kth)
                if np.array_equal(pulled, propose):
                    break
                propose = pulled
        arrivals = propose[:, None] + delay
        # A node's own proposal counts toward its quorum at its
        # propose time (it never receives its own broadcast).
        np.fill_diagonal(arrivals, 0.0)
        arrivals[np.arange(count),
                 np.arange(count)] = propose
        pool = arrivals if extra == 0 else np.vstack([arrivals, live])
        quorum = p.n - f
        return np.partition(pool, quorum - 1, axis=0)[quorum - 1]

    def run(self) -> ProtocolRunResult:
        p = self.params
        n = p.n
        adv = self.adv
        fc = adv.faulty_ids.size if adv is not None \
            else self.silent_faults
        correct = np.arange(fc, n)
        count = correct.size
        if self.rate_spread:
            rate = 1.0 + p.rho * (correct / max(n - 1, 1))
        else:
            rate = np.ones(count)
        offset = np.zeros(count)
        delays = self.streams.stream("delays")
        adv_delays = self.streams.stream("adv_delays") \
            if adv is not None else None
        max_skew = 0.0
        last_skew = 0.0
        # The event adapter's horizon is (rounds + 1) * period, which
        # executes the round-(rounds + 1) resync just before the end;
        # mirror that so steady-state maxima cover the same window.
        total_rounds = self.rounds + 1
        for r in range(1, total_rounds + 1):
            boundary = r * p.period
            naive = (boundary - offset) / rate
            if p.u > 0.0:
                delay = delays.uniform(p.d - p.u, p.d,
                                       size=(count, count))
            else:
                delay = np.full((count, count), p.d)
            if adv is not None:
                # Faulty delay draws come from a dedicated stream, in
                # a fixed per-round order, so the honest draw sequence
                # matches the adversary-free run exactly.
                if p.u > 0.0:
                    fdelay = adv_delays.uniform(p.d - p.u, p.d,
                                                (fc, count))
                else:
                    fdelay = np.full((fc, count), p.d)

                def lookahead(off, keep):
                    live = (boundary + fdelay + off)[keep]
                    acc = self._resync(
                        naive, delay, live if live.size else None)
                    new_offset = boundary + p.d - rate * acc
                    return _spread(rate * float(acc.max())
                                   + new_offset)

                off, keep = adv.round_pairs(
                    r, honest_local_skew=last_skew,
                    evaluate=lookahead)
                live = (boundary + fdelay + off)[keep]
                accept = self._resync(
                    naive, delay, live if live.size else None)
            else:
                accept = self._resync(naive, delay, None)
            # Probe 1: just before the first accept, on old offsets —
            # the largest drift accumulated since the last resync.
            t_pre = float(accept.min())
            max_skew = max(max_skew, _spread(rate * t_pre + offset))
            offset = boundary + p.d - rate * accept
            # Probe 2: just after the last accept, on new offsets.
            t_post = float(accept.max())
            last_skew = _spread(rate * t_post + offset)
            max_skew = max(max_skew, last_skew)
        horizon = (total_rounds + 1) * p.period
        max_skew = max(max_skew, _spread(rate * horizon + offset))
        return self._result(
            max_global=max_skew, max_local=max_skew, series=[],
            messages_sent=total_rounds * count * (n - 1),
            rounds=total_rounds, nodes=n,
            detail_extra={"max_skew": max_skew,
                          "silent_faults": self.silent_faults},
            with_stabilization=False,
            adversary=adv.counters() if adv is not None else None)


class VecLynchWelch(VecRoundModel):
    """Classic Lynch–Welch on one clique: trimmed approximate
    agreement over pulse times, one vectorized step per pulse round.

    Node ``i``'s round: observe every peer's pulse through a
    ``[d - u, d]`` delay draw, midpoint-compensate, trim the ``f``
    lowest and highest offset estimates, correct the next pulse by the
    midpoint of the survivors.  The event path runs the full FTGCS
    intra-cluster machinery instead, so equivalence is an
    envelope/tolerance contract on ``params.intra_skew_bound()``.
    """

    name = "lynch_welch"

    _CONFIG = ("init_jitter",)

    def __init__(self, ctx: BuildContext) -> None:
        super().__init__(ctx)
        if ctx.payload:
            _reject_unknown(ctx.payload, (), "payload", self.name)
        if ctx.params is None:
            raise ConfigError("lynch_welch needs params")
        _reject_unknown(dict(ctx.config), self._CONFIG, "config",
                        self.name)
        self.params = ctx.params
        self.rounds = int(ctx.rounds)
        init_jitter = ctx.config.get("init_jitter")
        self.init_jitter = (self.params.cap_e / 4.0
                            if init_jitter is None else init_jitter)

    def run(self) -> ProtocolRunResult:
        p = self.params
        k, f = p.cluster_size, p.f
        rate = 1.0 + p.rho * (np.arange(k) / max(k - 1, 1))
        if self.init_jitter > 0.0:
            pulses = self.streams.stream("init").uniform(
                0.0, self.init_jitter, k)
        else:
            pulses = np.zeros(k)
        delays = self.streams.stream("delays")
        series: list[tuple[float, float, float]] = []
        spread = _spread(pulses)
        max_skew = spread
        series.append((0.0, spread, spread))
        for r in range(1, self.rounds + 1):
            delay = delays.uniform(p.d - p.u, p.d, size=(k, k))
            # offsets[i, j]: i's midpoint-compensated estimate of
            # how far j's pulse leads/lags its own.
            offsets = (pulses[None, :] + delay.T
                       - pulses[:, None] - (p.d - p.u / 2.0))
            np.fill_diagonal(offsets, 0.0)
            trimmed = np.sort(offsets, axis=1)[:, f:k - f]
            correction = (trimmed[:, 0] + trimmed[:, -1]) / 2.0
            pulses = pulses + (p.round_length + correction) / rate
            spread = _spread(pulses)
            series.append((r * p.round_length, spread, spread))
            max_skew = max(max_skew, spread)
        return self._result(
            max_global=max_skew, max_local=max_skew, series=series,
            messages_sent=self.rounds * k * (k - 1),
            rounds=self.rounds, nodes=k)


class VecFtgcs(VecRoundModel):
    """The FTGCS *cluster-round skeleton*: one state per cluster.

    Each cluster is reduced to its (already intra-synchronized)
    cluster clock; per round it estimates neighbor clusters within the
    steady-state error ``±E``, evaluates the FT trigger, and advances
    at ``rate * (1 + mu * gamma)``.  This abstracts away the
    intra-cluster Lynch–Welch layer — the reason its equivalence
    contract is envelope-only (both engines inside the analytic
    bounds), not value-vs-value.
    """

    name = "ftgcs"

    _CONFIG = ("cluster_offsets",)

    def __init__(self, ctx: BuildContext) -> None:
        super().__init__(ctx)
        if ctx.payload:
            _reject_unknown(ctx.payload, (), "payload", self.name)
        if ctx.params is None:
            raise ConfigError("ftgcs needs params")
        if ctx.graph is None:
            raise ConfigError("ftgcs needs a topology")
        _reject_unknown(dict(ctx.config), self._CONFIG, "config",
                        self.name)
        self.params = ctx.params
        self.rounds = int(ctx.rounds)
        self.cluster_offsets = ctx.config.get("cluster_offsets")
        self.csr = CSRAdjacency(ctx.graph)
        model = self._adversary_model()
        self.adv = None
        if model is not None:
            # A "faulty" skeleton node is a cluster whose broadcast
            # estimate the coalition controls; the amplitude default
            # is the steady-state estimate error E (the budget the
            # paper's per-cluster f < k/3 grants an adversary).
            self.adv = VecAdversaryRuntime(
                model, self.csr, self.streams,
                default_amplitude=self.params.cap_e)

    def run(self) -> ProtocolRunResult:
        p = self.params
        csr = self.csr
        adv = self.adv
        n = csr.num_nodes
        rate = 1.0 + p.rho * (np.arange(n) % 2)
        clocks = np.zeros(n)
        if self.cluster_offsets is not None:
            clocks = clocks + np.asarray(self.cluster_offsets,
                                         dtype=np.float64)
        estimates_rng = self.streams.stream("estimates")
        series: list[tuple[float, float, float]] = []
        max_local = max_global = 0.0
        last_local = 0.0
        slots = csr.num_slots
        for r in range(1, self.rounds + 1):
            estimates = csr.gather(clocks)
            if p.cap_e > 0.0 and slots:
                estimates = estimates + estimates_rng.uniform(
                    -p.cap_e, p.cap_e, slots)
            if adv is not None:
                def lookahead(offsets, keep):
                    up, down = _injected_up_down(csr, clocks, estimates,
                                                 offsets, keep)
                    gamma = fast_trigger_mask(
                        up, down, p.kappa,
                        p.delta_trigger).astype(np.float64)
                    return adv.local_skew(
                        clocks + rate * (1.0 + p.mu * gamma)
                        * p.round_length)

                offsets, keep = adv.round_vectors(
                    r, honest_local_skew=last_local,
                    evaluate=lookahead)
                up, down = _injected_up_down(csr, clocks, estimates,
                                             offsets, keep)
            else:
                up = csr.segment_max(estimates) - clocks
                down = clocks - csr.segment_min(estimates)
            gamma = fast_trigger_mask(
                up, down, p.kappa, p.delta_trigger).astype(np.float64)
            clocks = clocks + rate * (1.0 + p.mu * gamma) \
                * p.round_length
            if adv is not None:
                local = adv.local_skew(clocks)
                global_ = adv.global_skew(clocks)
            else:
                local = csr.edge_skew(clocks)
                global_ = _spread(clocks)
            last_local = local
            series.append((r * p.round_length, local, global_))
            max_local = max(max_local, local)
            max_global = max(max_global, global_)
        return self._result(
            max_global=max_global, max_local=max_local, series=series,
            messages_sent=self.rounds * slots, rounds=self.rounds,
            nodes=n,
            adversary=adv.counters() if adv is not None else None)


#: Protocol name -> vectorized round model; the vectorized engine's
#: registry (lookup happens in
#: :func:`repro.engine_vec.engine.build_vec_system`).  Names match
#: :data:`repro.core.protocol.PROTOCOLS`; an adapter advertising
#: ``supports_vectorized`` must have an entry here.
VEC_PROTOCOLS: dict[str, type[VecRoundModel]] = {
    VecGcsSingle.name: VecGcsSingle,
    VecSrikanthToueg.name: VecSrikanthToueg,
    VecLynchWelch.name: VecLynchWelch,
    VecFtgcs.name: VecFtgcs,
}


__all__ = [
    "VEC_PROTOCOLS",
    "VecFtgcs",
    "VecGcsSingle",
    "VecLynchWelch",
    "VecSrikanthToueg",
]
