"""The event/vectorized equivalence contract, executable.

Every protocol with a vectorized port is pinned to the event engine by
a matrix of *cells* — (protocol, topology, parameters, seed) points
run on **both** engines and compared under one of three modes:

``exact``
    Bit-equality of the headline skews.  Used on degenerate
    deterministic cells (``rho = 0``, ``u = 0``): every clock agrees
    forever, so both engines must report exactly ``0.0`` — any float
    of drift in either round model is a bug, not noise.
``tolerance``
    ``|vec - event| <= tol`` with a per-cell documented ``tol``.  The
    engines sample at different instants (wall-clock grid vs round
    boundaries) and the round models abstract per-message effects, so
    stochastic cells agree up to a drift-plus-jitter budget derived
    from the cell's parameters (see each cell's construction).
``envelope``
    Both engines inside the analytic skew bounds.  Used where the
    vectorized model is a structural port rather than a re-execution
    (FTGCS's cluster-round skeleton): value-vs-value comparison is
    meaningless, the theory's guarantees are the shared contract.

:func:`quick_cells` is the standing matrix (every vectorized protocol,
including the degenerate-topology and f-bound fault cells);
:func:`run_equivalence` executes it and returns a report.  The matrix
runs in-process in a few seconds — it is a test fixture
(``tests/test_equivalence.py``) and the ``make smoke-vec`` target, not
a sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.baselines.gcs_single import GcsParams
from repro.baselines.srikanth_toueg import StParams
from repro.core.params import Parameters
from repro.core.protocol import SystemBuilder
from repro.topology.cluster_graph import ClusterGraph

MODES = ("exact", "tolerance", "envelope")


@dataclass(frozen=True)
class EquivalenceCell:
    """One (protocol, topology, parameters, seed) comparison point.

    ``factory`` builds a fresh :class:`SystemBuilder` with everything
    *except* engine and seed composed; the runner applies those.
    ``compare`` names the headline fields diffed under
    exact/tolerance (lynch_welch compares ``global`` only: its event
    adapter reports local cluster skew as 0.0 on the single cluster
    while the round model has no separate local notion).
    ``bound_local``/``bound_global`` are analytic ceilings both
    engines must individually respect (the whole contract for
    ``envelope`` cells, an extra sanity net elsewhere).
    """

    name: str
    protocol: str
    mode: str
    factory: Callable[[], SystemBuilder]
    seed: int = 0
    tolerance: float = 0.0
    compare: tuple[str, ...] = ("local", "global")
    bound_local: float | None = None
    bound_global: float | None = None


@dataclass
class CellResult:
    """Both engines' headline skews for one cell, plus the verdict."""

    cell: EquivalenceCell
    event_local: float
    event_global: float
    vec_local: float
    vec_global: float
    passed: bool
    failures: list[str] = field(default_factory=list)


@dataclass
class EquivalenceReport:
    """The full matrix outcome; ``passed`` iff every cell passed."""

    results: list[CellResult]

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.results)

    @property
    def failures(self) -> list[str]:
        return [f"{r.cell.name}: {msg}"
                for r in self.results for msg in r.failures]

    def summary(self) -> str:
        ok = sum(r.passed for r in self.results)
        lines = [f"equivalence: {ok}/{len(self.results)} cells passed"]
        for r in self.results:
            status = "ok" if r.passed else "FAIL"
            lines.append(
                f"  [{status}] {r.cell.name} ({r.cell.mode}): "
                f"event=({r.event_local:.6g}, {r.event_global:.6g}) "
                f"vec=({r.vec_local:.6g}, {r.vec_global:.6g})")
            lines.extend(f"         {msg}" for msg in r.failures)
        return "\n".join(lines)


def run_cell(cell: EquivalenceCell) -> CellResult:
    """Run one cell on both engines and compare per its mode."""
    skews = {}
    for engine in ("event", "vectorized"):
        result = (cell.factory().engine(engine).seed(cell.seed)
                  .build().run())
        skews[engine] = (result.max_local_skew, result.max_global_skew)
    ev_local, ev_global = skews["event"]
    vec_local, vec_global = skews["vectorized"]
    failures: list[str] = []
    pairs = {"local": (ev_local, vec_local),
             "global": (ev_global, vec_global)}
    if cell.mode == "exact":
        for which in cell.compare:
            ev, vec = pairs[which]
            if vec != ev:
                failures.append(
                    f"{which} skew not bit-equal: event={ev!r} "
                    f"vec={vec!r}")
    elif cell.mode == "tolerance":
        for which in cell.compare:
            ev, vec = pairs[which]
            if abs(vec - ev) > cell.tolerance:
                failures.append(
                    f"{which} skew diff {abs(vec - ev):.6g} exceeds "
                    f"tolerance {cell.tolerance:.6g}")
    elif cell.mode != "envelope":
        failures.append(f"unknown mode {cell.mode!r}")
    for bound, which in ((cell.bound_local, "local"),
                         (cell.bound_global, "global")):
        if bound is None:
            continue
        for engine, (local, global_) in skews.items():
            value = local if which == "local" else global_
            if value > bound:
                failures.append(
                    f"{engine} {which} skew {value:.6g} exceeds "
                    f"analytic bound {bound:.6g}")
    return CellResult(cell=cell, event_local=ev_local,
                      event_global=ev_global, vec_local=vec_local,
                      vec_global=vec_global, passed=not failures,
                      failures=failures)


def run_equivalence(cells: list[EquivalenceCell] | None = None
                    ) -> EquivalenceReport:
    """Run ``cells`` (default :func:`quick_cells`) on both engines."""
    if cells is None:
        cells = quick_cells()
    return EquivalenceReport([run_cell(cell) for cell in cells])


# ----------------------------------------------------------------------
# The standing quick matrix
# ----------------------------------------------------------------------


def _st_cell(name: str, mode: str, *, n: int, f: int, rho: float,
             u: float, rounds: int, silent: int = 0, seed: int = 0,
             d: float = 1.0, period: float = 10.0) -> EquivalenceCell:
    params = StParams(n=n, f=f, rho=rho, d=d, u=u, period=period)

    def factory(params=params, rounds=rounds, silent=silent):
        return (SystemBuilder("srikanth_toueg")
                .payload(params=params, rounds=rounds,
                         silent_faults=silent))

    # Tolerance budget: the engines probe at different instants, at
    # most one inter-accept interval apart, so they can disagree by
    # the jitter width plus one period of drift — twice, once per
    # probe side.
    tol = 2.0 * (u + rho * period)
    return EquivalenceCell(name=name, protocol="srikanth_toueg",
                           mode=mode, factory=factory, seed=seed,
                           tolerance=tol)


def _gcs_cell(name: str, mode: str, *, graph_size: int,
              params: GcsParams, until: float, tolerance: float = 0.0,
              seed: int = 0) -> EquivalenceCell:
    def factory(graph_size=graph_size, params=params, until=until):
        return (SystemBuilder("gcs_single")
                .topology(ClusterGraph.line(graph_size))
                .payload(params=params, until=until))

    return EquivalenceCell(name=name, protocol="gcs_single",
                           mode=mode, factory=factory, seed=seed,
                           tolerance=tolerance)


def quick_cells() -> list[EquivalenceCell]:
    """The standing matrix: every vectorized protocol, exact cells
    where the math permits, documented tolerance otherwise, plus the
    degenerate-topology and f-bound fault cells."""
    cells: list[EquivalenceCell] = []

    # -- srikanth_toueg ------------------------------------------------
    # Exact: rho = u = 0 makes every resync deterministic and perfect.
    cells.append(_st_cell("st-exact-n4", "exact", n=4, f=1, rho=0.0,
                          u=0.0, rounds=5))
    # Silent faults at the f-bound stay exact: the n - f quorum is met
    # by the n - f correct proposals alone.
    cells.append(_st_cell("st-exact-silent-fbound", "exact", n=7, f=2,
                          rho=0.0, u=0.0, rounds=5, silent=2))
    # Single node: quorum of one, offset advances by d per round.
    cells.append(_st_cell("st-exact-single", "exact", n=1, f=0,
                          rho=0.0, u=0.0, rounds=5))
    # Stochastic cells, with and without silent faults.
    for seed in (0, 1):
        cells.append(_st_cell(f"st-tol-s{seed}", "tolerance", n=7,
                              f=2, rho=1e-4, u=0.01, rounds=20,
                              seed=seed))
    cells.append(_st_cell("st-tol-silent-fbound", "tolerance", n=7,
                          f=2, rho=1e-4, u=0.01, rounds=20, silent=2,
                          seed=1))

    # -- gcs_single ----------------------------------------------------
    exact_params = GcsParams(rho=0.0, d=1.0, u=0.0, mu=0.01,
                             period=10.0, kappa=0.3, slack=0.1)
    cells.append(_gcs_cell("gcs-exact-line4", "exact", graph_size=4,
                           params=exact_params, until=200.0))
    # Edge-free graph: local skew is 0.0 by convention on both engines
    # (degree-0 vertices never trigger).
    cells.append(_gcs_cell("gcs-exact-edgeless", "exact",
                           graph_size=1, params=exact_params,
                           until=100.0))
    # Stochastic cell through a full trigger sawtooth (drift to the
    # first level boundary and fast-mode recovery).  Tolerance: one
    # level width — engine disagreement is at most one round of
    # trigger-decision divergence, worth (mu + 2 rho) * period + u,
    # which kappa dominates by construction.
    tol_params = GcsParams(rho=1e-3, d=1.0, u=0.01, mu=0.01,
                           period=10.0, kappa=0.3, slack=0.1)
    for seed in (0, 1):
        cells.append(_gcs_cell(f"gcs-tol-line6-s{seed}", "tolerance",
                               graph_size=6, params=tol_params,
                               until=1000.0,
                               tolerance=tol_params.kappa, seed=seed))

    # -- adversary layer (engine-agnostic AdversaryModel) --------------
    # Silent adversary ≡ native silent_faults: on the degenerate cell
    # both engines are deterministic and perfect, so the unified
    # spelling must reproduce the exact 0.0 the legacy payload gives.
    adv_st = StParams(n=7, f=2, rho=0.0, d=1.0, u=0.0, period=10.0)

    def adv_st_factory(params=adv_st):
        return (SystemBuilder("srikanth_toueg")
                .payload(params=params, rounds=5)
                .adversary("silent", count=2))

    cells.append(EquivalenceCell(
        name="st-adv-silent-exact", protocol="srikanth_toueg",
        mode="exact", factory=adv_st_factory))
    # Equivocate adversary: the event engine realizes per-delivery
    # liars (GcsLiarNode, bias = amplitude, ramp = 0), the vectorized
    # engine masked estimate writes.  Same placement and directions,
    # different mechanisms — the budget is one trigger-level width,
    # as for the benign stochastic cells (measured diff ~u, far
    # inside it).
    adv_gcs = GcsParams(rho=1e-3, d=1.0, u=0.01, mu=0.01,
                        period=10.0, kappa=0.3, slack=0.1)

    def adv_gcs_factory(params=adv_gcs):
        return (SystemBuilder("gcs_single")
                .topology(ClusterGraph.line(6))
                .payload(params=params, until=1000.0)
                .adversary("equivocate"))

    cells.append(EquivalenceCell(
        name="gcs-adv-equivocate-tol", protocol="gcs_single",
        mode="tolerance", factory=adv_gcs_factory,
        tolerance=adv_gcs.kappa))

    # -- lynch_welch ---------------------------------------------------
    lw_params = Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1)
    lw_bound = lw_params.intra_skew_bound()

    def lw_factory(params=lw_params):
        return SystemBuilder("lynch_welch").params(params).rounds(10)

    for seed in (0, 1):
        cells.append(EquivalenceCell(
            name=f"lw-tol-s{seed}", protocol="lynch_welch",
            mode="tolerance", factory=lw_factory, seed=seed,
            # The event path runs the full FTGCS intra-cluster
            # machinery, the round model the classic recursion; both
            # live inside (and may differ by up to) the intra-cluster
            # bound.  Global only: the event adapter's "local" is the
            # cross-cluster notion, identically 0.0 on one cluster.
            tolerance=lw_bound, compare=("global",),
            bound_global=lw_bound))

    # -- ftgcs ---------------------------------------------------------
    ft_params = Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1)
    ft_graph = ClusterGraph.line(3)
    ft_global = ft_params.global_skew_bound(2)  # line(3): D = 2

    def ft_factory(params=ft_params, graph=ft_graph):
        return (SystemBuilder("ftgcs").topology(graph).params(params)
                .rounds(4))

    for seed in (0, 1):
        cells.append(EquivalenceCell(
            name=f"ftgcs-envelope-s{seed}", protocol="ftgcs",
            mode="envelope", factory=ft_factory, seed=seed,
            bound_global=ft_global,
            bound_local=ft_params.local_skew_bound(ft_global)))

    # Equivocate adversary on FTGCS: event side is the legacy
    # strategy adapter, vectorized side masked estimate writes into
    # the cluster-round skeleton — structural port vs re-execution,
    # so the envelope is the contract (as for the benign ftgcs cells).
    def ft_adv_factory(params=ft_params, graph=ft_graph):
        return (SystemBuilder("ftgcs").topology(graph).params(params)
                .rounds(4).adversary("equivocate"))

    cells.append(EquivalenceCell(
        name="ftgcs-adv-equivocate-envelope", protocol="ftgcs",
        mode="envelope", factory=ft_adv_factory,
        bound_global=ft_global,
        bound_local=ft_params.local_skew_bound(ft_global)))

    return cells


__all__ = [
    "MODES",
    "CellResult",
    "EquivalenceCell",
    "EquivalenceReport",
    "quick_cells",
    "run_cell",
    "run_equivalence",
]
