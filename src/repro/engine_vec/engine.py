"""The vectorized engine runtime: streams, triggers, ``VecSystem``.

:func:`build_vec_system` is the back half of
``SystemBuilder.engine("vectorized").build()``: it resolves the
protocol's vectorized round model from
:data:`~repro.engine_vec.protocols.VEC_PROTOCOLS` and wraps it in a
:class:`VecSystem`, which quacks enough like
:class:`~repro.core.protocol.System` for the sweep worker — ``run()``
returns the same :class:`~repro.core.protocol.ProtocolRunResult`
shape, and ``.protocol.analysis_system()`` returns ``None`` (the
vectorized engine keeps no live per-node substrate for in-worker
collectors to walk).

Randomness follows the event kernel's discipline: every stream a model
consumes is a :class:`numpy.random.Generator` seeded with
``derive_seed(ctx.seed, "vec/<protocol>/<stream>")`` — the same
BLAKE2b derivation :class:`~repro.sim.rng.RngRegistry` applies, under
a ``vec/`` prefix so the two engines never alias each other's streams.
Draws are consumed in a fixed per-round order, so results are
bit-reproducible across processes and pool sizes.
"""

from __future__ import annotations

import numpy as np

from repro.core.protocol import BuildContext, ProtocolRunResult
from repro.errors import ConfigError
from repro.sim.rng import derive_seed


class VecStreams:
    """Named, lazily created numpy generators for one run.

    ``stream(name)`` seeds a fresh PCG64 with
    ``derive_seed(seed, f"vec/{scope}/{name}")``; repeated calls return
    the same generator, so a model's draw order fully determines the
    consumed sequence.
    """

    def __init__(self, seed: int, scope: str) -> None:
        self.seed = seed
        self.scope = scope
        self._generators: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        generator = self._generators.get(name)
        if generator is None:
            derived = derive_seed(self.seed, f"vec/{self.scope}/{name}")
            generator = np.random.Generator(np.random.PCG64(derived))
            self._generators[name] = generator
        return generator


def fast_trigger_mask(up: np.ndarray, down: np.ndarray, kappa: float,
                      slack: float) -> np.ndarray:
    """Vectorized FT trigger (closed form of Definition 4.3).

    Mirrors :func:`repro.core.triggers._exists_fast_level` elementwise:
    an integer level ``s >= 1`` with ``up >= 2 s kappa - slack`` and
    ``down <= 2 s kappa + slack``.  Degree-0 nodes carry
    ``up = down = -inf`` and come out ``False``, matching the scalar
    evaluator's no-neighbors answer.
    """
    s_hi = np.floor((up + slack) / (2.0 * kappa))
    s_lo = np.maximum(1.0, np.ceil((down - slack) / (2.0 * kappa)))
    return s_hi >= s_lo


def slow_trigger_mask(up: np.ndarray, down: np.ndarray, kappa: float,
                      slack: float) -> np.ndarray:
    """Vectorized ST trigger (odd-rung closed form, Definition 4.4)."""
    m_hi = np.floor((down + slack) / kappa)
    m_lo = np.maximum(1.0, np.ceil((up - slack) / kappa))
    odd_in_range = (np.mod(m_lo, 2.0) == 1.0) | (m_lo + 1.0 <= m_hi)
    return (m_hi >= m_lo) & odd_in_range


class _VecProtocolHandle:
    """Stand-in for ``System.protocol`` on the vectorized engine."""

    def __init__(self, name: str) -> None:
        self.name = name

    def analysis_system(self):
        """No live substrate: in-worker collectors are unsupported."""
        return None


class VecSystem:
    """A built vectorized run, duck-compatible with
    :class:`~repro.core.protocol.System` where the sweep worker needs
    it (``run()`` and ``protocol.analysis_system()``)."""

    def __init__(self, model) -> None:
        self.model = model
        self.ctx = model.ctx
        self.protocol = _VecProtocolHandle(model.name)

    def run(self) -> ProtocolRunResult:
        return self.model.run()


def build_vec_system(name: str, ctx: BuildContext) -> VecSystem:
    """Resolve the protocol's vectorized model and wrap it.

    Raises :class:`~repro.errors.ConfigError` for protocols without a
    vectorized port — the builder's ``supports_vectorized`` check makes
    this unreachable through the public path, but direct callers get
    the same eager failure.
    """
    from repro.engine_vec.protocols import VEC_PROTOCOLS

    model_class = VEC_PROTOCOLS.get(name)
    if model_class is None:
        raise ConfigError(
            f"protocol {name!r} has no vectorized port; supported: "
            f"{sorted(VEC_PROTOCOLS)}")
    return VecSystem(model_class(ctx))


__all__ = [
    "VecStreams",
    "VecSystem",
    "build_vec_system",
    "fast_trigger_mask",
    "slow_trigger_mask",
]
