"""The vectorized synchronous-round execution engine.

A second backend behind the :class:`~repro.core.protocol.SyncProtocol`
surface (ROADMAP item 2): node state lives in numpy struct-of-arrays,
topology in CSR adjacency, and each protocol round is one vectorized
kernel step over *all* nodes at once — neighbor min/max via CSR
segment reductions, per-round delay/drift draws as vectors from
BLAKE2b-derived streams (the same ``derive_seed`` discipline the event
kernel uses).  This trades the event kernel's per-message fidelity for
throughput: million-node grids at thousands of rounds per second.

Select it with ``SystemBuilder.engine("vectorized")`` /
``Scenario.engine("vectorized")`` / ``ScenarioSpec.engine``; protocols
advertise support via the ``supports_vectorized`` capability flag.
The equivalence contract against the event kernel (bit-equal where the
math permits, documented tolerance otherwise) is implemented and
enforced by :mod:`repro.engine_vec.equivalence`.

numpy is the only third-party dependency, imported lazily: the rest
of the library stays importable without it, and selecting the
vectorized engine on a numpy-less install raises a clear
:class:`~repro.errors.ConfigError` at build time.
"""

from repro.engine_vec.engine import VecSystem, build_vec_system

__all__ = ["VecSystem", "build_vec_system"]
