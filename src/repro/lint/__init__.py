"""``repro.lint`` — the project's determinism & contract linter.

The platform's load-bearing guarantees (bit-identical serial vs
parallel sweeps, the cross-engine equivalence matrix, zero-execution
cache hits) rest on conventions no generic tool checks: all
randomness flows through :func:`repro.sim.rng.derive_seed` under
collision-free stream labels, deterministic paths never read the wall
clock, unordered collections never feed the event stream, and every
``ScenarioSpec`` field participates in the canonical content hash.
This package enforces them statically, in two halves:

* the **AST pass** (:mod:`repro.lint.astpass`) reads ``src/`` without
  importing it — rules ``raw-rng``, ``wall-clock``,
  ``unordered-iter``, ``stream-label``;
* the **contract pass** (:mod:`repro.lint.contracts`) imports the
  live registries and introspects them — rules ``spec-codec``,
  ``capability``, ``registry-coverage``.

Deliberate violations are suppressed inline with
``repro: allow[<rule>] -- <reason>`` (:mod:`repro.lint.pragmas`);
a reasonless pragma is itself a finding.  The CLI surface is
``repro lint`` (text or JSON, nonzero exit on findings), wired into
``make lint``, ``make verify``, and CI.

:func:`run_lint` is the library entry point the CLI, tests, and CI
all share.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.lint.astpass import cross_module_findings, lint_module
from repro.lint.contracts import run_contracts
from repro.lint.pragmas import apply_suppressions, parse_pragmas
from repro.lint.report import (Finding, LintReport, format_json,
                               format_text, report_dict, sort_findings)
from repro.lint.rules import RULES


def repo_root() -> Path:
    """The repository root (``src/repro/lint`` → three levels up).

    Falls back to the working directory when the package is imported
    from somewhere that does not look like the source tree (an
    installed copy), so ``repro lint`` keeps working from a checkout
    cwd.
    """
    root = Path(__file__).resolve().parents[3]
    if (root / "src" / "repro").is_dir():
        return root
    return Path.cwd()


def iter_source_files(root: Path,
                      paths: Sequence[str] | None = None) -> list[Path]:
    """The files the AST pass scans, in canonical (sorted) order.

    Default scope is ``src/`` — benchmarks and tests measure wall
    time and seed ad-hoc generators by design, so scanning them would
    only produce noise.  Explicit ``paths`` (files or directories)
    override the default scope.
    """
    if paths:
        files: list[Path] = []
        for entry in paths:
            path = Path(entry)
            if not path.is_absolute():
                path = root / path
            if path.is_dir():
                files.extend(path.rglob("*.py"))
            else:
                files.append(path)
        return sorted(set(files))
    return sorted((root / "src").rglob("*.py"))


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def run_lint(root: Path | None = None, *,
             paths: Sequence[str] | None = None,
             contracts: bool = True) -> LintReport:
    """Run both passes and return the finished report.

    ``contracts=False`` restricts the run to the AST pass (useful on
    a tree that does not import).  Pragma suppression applies to every
    AST finding, including cross-module stream-label collisions (each
    site suppresses independently); contract findings are never
    suppressible — they break guarantees no single call site can
    vouch for.
    """
    if root is None:
        root = repo_root()
    files = iter_source_files(root, paths)
    findings: list[Finding] = []
    labels = []
    indexes = {}
    for file in files:
        text = file.read_text(encoding="utf-8")
        rel = _relpath(file, root)
        site_findings, file_labels = lint_module(text, rel)
        index = parse_pragmas(text, rel)
        indexes[rel] = index
        findings.extend(apply_suppressions(site_findings, index))
        findings.extend(index.findings)
        labels.extend(file_labels)
    for finding in cross_module_findings(labels):
        index = indexes.get(finding.path)
        if index is not None and index.suppressed(finding.line,
                                                 finding.rule):
            continue
        findings.append(finding)
    if contracts:
        findings.extend(run_contracts(root))
    return LintReport(findings=sort_findings(findings),
                      files_scanned=len(files))


__all__ = [
    "Finding",
    "LintReport",
    "RULES",
    "format_json",
    "format_text",
    "iter_source_files",
    "repo_root",
    "report_dict",
    "run_lint",
    "sort_findings",
]
