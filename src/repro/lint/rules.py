"""Rule definitions and allowlists for ``repro lint``.

Every determinism guarantee the reproduction makes — bit-identical
serial vs parallel sweeps, the cross-engine equivalence matrix,
zero-execution cache hits — rests on conventions nothing in Python
enforces.  Each :class:`Rule` here names one such convention; the AST
pass (:mod:`repro.lint.astpass`) and the contract pass
(:mod:`repro.lint.contracts`) report violations under these ids, and
the pragma layer (:mod:`repro.lint.pragmas`) suppresses deliberate
ones with an inline reason.

The :data:`ALLOWLIST` exempts whole modules from single rules where
the rule's premise does not apply — e.g. ``harness/microbench.py``
*is* the wall-clock measurement code, so flagging ``perf_counter``
there would be noise.  Everything subtler than a whole module uses a
``repro: allow[<rule>] -- <reason>`` pragma instead, so the
exception and its justification live next to the code.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Rule:
    """One lint rule: stable id, what it enforces, how to fix it."""

    id: str
    summary: str
    hint: str


#: The rule set, keyed by stable id.  Ids are part of the pragma
#: surface (``repro: allow[raw-rng] -- ...``) — never rename one.
RULES: dict[str, Rule] = {rule.id: rule for rule in (
    Rule(
        id="raw-rng",
        summary="RNG constructed outside repro.sim.rng with a seed "
                "not derived via derive_seed",
        hint="seed the generator with derive_seed(seed, \"<stream>\") "
             "so the stream is named, isolated, and replayable"),
    Rule(
        id="wall-clock",
        summary="wall-clock read (time.time/perf_counter/datetime.now) "
                "in a deterministic module",
        hint="use sim.now for simulated time; if the reading is "
             "deliberately wall-clock (timing extras, service "
             "bookkeeping), add a repro: allow pragma with the reason"),
    Rule(
        id="unordered-iter",
        summary="iteration over a set/dict.keys() drives event "
                "scheduling, RNG draws, or edge building",
        hint="wrap the iterable in sorted(...) so the visit order is "
             "deterministic across processes and hash seeds"),
    Rule(
        id="stream-label",
        summary="derive_seed stream-label collision across modules, "
                "or a vectorized stream without the vec/ prefix",
        hint="give every independent consumer its own label; streams "
             "drawn in repro.engine_vec must start with \"vec/\""),
    Rule(
        id="spec-codec",
        summary="ScenarioSpec field not handled by the tagged codec, "
                "absent from spec_hash, or hash-breaking by default",
        hint="encode the field canonically and either let it enter "
             "spec_hash or list it in _SERIALIZE_OMIT_EMPTY (falsy "
             "default) so historical cache keys survive"),
    Rule(
        id="capability",
        summary="protocol missing an explicit capability-flag "
                "declaration, or supports_vectorized without an "
                "equivalence-matrix cell",
        hint="declare every supports_* flag on the protocol class and "
             "give vectorized protocols a cell in "
             "engine_vec.equivalence.quick_cells"),
    Rule(
        id="registry-coverage",
        summary="registered experiment without a bench/smoke script "
                "or without a test referencing it",
        hint="add benchmarks/bench_<id>_*.py (or smoke_<id>*.py) and "
             "reference the id from a test"),
    Rule(
        id="bare-pragma",
        summary="repro: allow pragma without a reason, or naming an "
                "unknown rule",
        hint="write the comment `repro: allow[<rule>] -- <why this violation is "
             "deliberate>"),
)}

#: Rule ids the six *testable* families collapse to (capability and
#: registry coverage ride one contract pass; bare-pragma polices the
#: suppression mechanism itself).
RULE_IDS: tuple[str, ...] = tuple(RULES)

#: ``rule id -> repo-relative path suffixes`` exempt from that rule.
#: Module-granular by design: anything finer belongs in an inline
#: pragma where the reason is visible at the call site.
ALLOWLIST: dict[str, tuple[str, ...]] = {
    # The microbenchmark module measures wall-clock throughput and
    # seeds synthetic workloads; both rules' premises (deterministic
    # simulation path) do not apply to it.
    "wall-clock": ("repro/harness/microbench.py",),
    "raw-rng": ("repro/harness/microbench.py",),
}

#: The one module allowed to construct generators from raw seeds: the
#: stream factory itself.
RNG_HOME_SUFFIX = "repro/sim/rng.py"


def is_allowlisted(rule: str, relpath: str) -> bool:
    """True when ``relpath`` is module-exempt from ``rule``."""
    path = relpath.replace("\\", "/")
    return any(path.endswith(suffix)
               for suffix in ALLOWLIST.get(rule, ()))


__all__ = ["ALLOWLIST", "RNG_HOME_SUFFIX", "RULES", "RULE_IDS", "Rule",
           "is_allowlisted"]
