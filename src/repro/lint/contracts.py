"""The import-and-introspect contract pass.

Where the AST pass (:mod:`repro.lint.astpass`) reads source, this pass
imports the live library and checks the contracts the platform's
guarantees hang on:

``spec-codec``
    Every :class:`~repro.harness.sweep.ScenarioSpec` field must be
    handled by the tagged codec and enter ``spec_hash`` (or sit in an
    explicit omit list), and the canonical encoding of a
    default-constructed spec must match a pinned hash — the direct
    lesson of PR 9's ``_SERIALIZE_OMIT_EMPTY`` near-miss, where a new
    field would have silently changed every historical cache key.

``capability``
    Every entry in :data:`~repro.core.protocol.PROTOCOLS` must
    *explicitly* declare the full capability-flag set (inheriting the
    silent ``False`` default from ``SyncProtocol`` does not count:
    a new flag added to the base would otherwise ripple unnoticed
    through every adapter), and every ``supports_vectorized``
    protocol must hold at least one cell in the standing cross-engine
    equivalence matrix.

``registry-coverage``
    Every registered experiment id must have a matching
    ``benchmarks/bench_<id>*.py`` (or ``smoke_<id>*.py``) script and
    at least one test referencing it, so no experiment can rot
    outside the bench and test loops.

Each check takes its subjects as parameters (defaulting to the live
registries) so the test suite can inject fixture specs, protocols,
and registries and assert findings fire — see ``tests/test_lint.py``.
"""

from __future__ import annotations

import dataclasses
import inspect
import json
import re
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import ConfigError
from repro.lint.report import Finding
from repro.lint.rules import RULES

#: BLAKE2b content hash of ``ScenarioSpec(seed=0)`` under the canonical
#: tagged codec.  This is the *frozen* cache-key baseline: any change
#: to the default spec's encoding re-keys every historical result in
#: the content-addressed store.  Adding a spec field is fine — give it
#: a falsy default and list it in ``_SERIALIZE_OMIT_EMPTY`` so default
#: specs keep this encoding.  Update the pin only for a deliberate,
#: cache-invalidating format change.
PINNED_DEFAULT_SPEC_HASH = "7103cb53ec34e416f5bb0ae66d1cf6aa7e74ee4f"

#: The five capability flags every protocol adapter must declare.
CAPABILITY_FLAGS = (
    "supports_faults",
    "supports_dynamic_topology",
    "supports_node_churn",
    "supports_first_contact",
    "supports_vectorized",
)

#: ScenarioSpec fields allowed *not* to perturb ``spec_hash``.
#: Currently empty: every field participates (even ``timing``, whose
#: wall-clock *measurements* are excluded from determinism checks —
#: the flag itself still keys the cache).
HASH_EXEMPT: tuple[str, ...] = ()


def _locate(obj: Any, root: Path | None) -> tuple[str, int]:
    """``(repo-relative path, line)`` of an object's definition."""
    try:
        source = inspect.getsourcefile(obj)
        line = inspect.getsourcelines(obj)[1]
    except (OSError, TypeError):
        return "<unknown>", 1
    path = Path(source or "<unknown>")
    if root is not None:
        try:
            path = path.resolve().relative_to(root.resolve())
        except ValueError:
            pass
    return path.as_posix(), line


def _sentinel(value: Any) -> Any:
    """A not-equal, codec-encodable replacement for a field value."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + 1
    if isinstance(value, float):
        return value + 1.0
    if isinstance(value, str):
        return value + "~lint"
    if isinstance(value, tuple):
        return value + ("~lint",)
    if isinstance(value, list):
        return value + ["~lint"]
    if isinstance(value, dict):
        return {**value, "~lint": 1}
    if value is None:
        return 1
    return "~lint"


def check_spec_codec(spec_cls: type | None = None, *,
                     pinned_hash: str | None = None,
                     hash_exempt: Sequence[str] = HASH_EXEMPT,
                     root: Path | None = None) -> list[Finding]:
    """The ScenarioSpec ↔ tagged-codec ↔ ``spec_hash`` contract."""
    from repro.harness import serialize
    from repro.harness.sweep import ScenarioSpec

    if spec_cls is None:
        spec_cls = ScenarioSpec
    if pinned_hash is None and spec_cls is ScenarioSpec:
        pinned_hash = PINNED_DEFAULT_SPEC_HASH
    path, line = _locate(spec_cls, root)
    hint = RULES["spec-codec"].hint
    findings: list[Finding] = []

    def found(message: str) -> None:
        findings.append(Finding(path=path, line=line,
                                rule="spec-codec", message=message,
                                hint=hint))

    try:
        baseline = spec_cls(seed=0)
    except TypeError as exc:
        found(f"cannot default-construct {spec_cls.__name__}: {exc}")
        return findings
    try:
        base_hash = serialize.content_hash(baseline)
    except ConfigError as exc:
        found(f"default {spec_cls.__name__} does not encode under "
              f"the tagged codec: {exc}")
        return findings
    if pinned_hash is not None and base_hash != pinned_hash:
        found(f"canonical encoding of the default spec changed "
              f"(hash {base_hash} != pinned {pinned_hash}); a new "
              "field without _SERIALIZE_OMIT_EMPTY re-keys every "
              "cached result")

    field_names = {f.name for f in dataclasses.fields(spec_cls)}
    omit = tuple(getattr(spec_cls, "_SERIALIZE_OMIT_EMPTY", ()))
    for name in omit:
        if name not in field_names:
            found(f"_SERIALIZE_OMIT_EMPTY entry {name!r} is not a "
                  "spec field")
        elif getattr(baseline, name):
            found(f"_SERIALIZE_OMIT_EMPTY field {name!r} has a "
                  "truthy default, so default specs encode it "
                  "inconsistently")

    for field in dataclasses.fields(spec_cls):
        sentinel = _sentinel(getattr(baseline, field.name))
        try:
            probe = dataclasses.replace(
                baseline, **{field.name: sentinel})
        except TypeError:
            continue
        try:
            probe_hash = serialize.content_hash(probe)
        except ConfigError as exc:
            found(f"field {field.name!r} is not handled by the "
                  f"tagged codec: {exc}")
            continue
        if probe_hash == base_hash and field.name not in hash_exempt:
            found(f"field {field.name!r} does not enter spec_hash — "
                  "distinct cells would share one cache key")

    if hasattr(spec_cls, "to_dict") and hasattr(spec_cls, "from_dict"):
        try:
            wire = json.loads(json.dumps(baseline.to_dict()))
            if spec_cls.from_dict(wire) != baseline:
                found("to_dict/from_dict round trip is lossy for the "
                      "default spec")
        except (ConfigError, TypeError, ValueError) as exc:
            found(f"to_dict/from_dict round trip failed: {exc}")
    return findings


def _live_protocols() -> Mapping[str, type]:
    from repro.core.protocol import PROTOCOLS, get_protocol

    get_protocol("ftgcs")  # forces the lazy builtin load
    return dict(PROTOCOLS)


def check_capabilities(protocols: Mapping[str, type] | None = None, *,
                       root: Path | None = None) -> list[Finding]:
    """Every protocol declares the full capability-flag set itself."""
    from repro.core.protocol import SyncProtocol

    if protocols is None:
        protocols = _live_protocols()
    findings = []
    for name in sorted(protocols):
        cls = protocols[name]
        declared_in = [k for k in cls.__mro__
                       if k is not SyncProtocol and k is not object]
        missing = [flag for flag in CAPABILITY_FLAGS
                   if not any(flag in k.__dict__ for k in declared_in)]
        if missing:
            path, line = _locate(cls, root)
            findings.append(Finding(
                path=path, line=line, rule="capability",
                message=f"protocol {name!r} inherits "
                        f"{', '.join(missing)} from the SyncProtocol "
                        "default instead of declaring them",
                hint=RULES["capability"].hint))
    return findings


def check_equivalence_coverage(
        protocols: Mapping[str, type] | None = None,
        cells: Iterable[Any] | None = None, *,
        root: Path | None = None) -> list[Finding]:
    """Every ``supports_vectorized`` protocol has an equivalence cell."""
    if protocols is None:
        protocols = _live_protocols()
    if cells is None:
        try:
            from repro.engine_vec.equivalence import quick_cells
        except ImportError:  # numpy-less environment: nothing to check
            return []
        cells = quick_cells()
    covered = {cell.protocol for cell in cells}
    findings = []
    for name in sorted(protocols):
        cls = protocols[name]
        if not getattr(cls, "supports_vectorized", False):
            continue
        if name in covered:
            continue
        path, line = _locate(cls, root)
        findings.append(Finding(
            path=path, line=line, rule="capability",
            message=f"protocol {name!r} declares supports_vectorized "
                    "but has no cell in the standing equivalence "
                    "matrix (engine_vec.equivalence.quick_cells)",
            hint=RULES["capability"].hint))
    return findings


def _experiment_anchor(root: Path, experiment_id: str
                       ) -> tuple[str, int]:
    """``file:line`` of an experiment's registration, best effort."""
    rel = Path("src/repro/harness/experiments.py")
    source = root / rel
    if source.is_file():
        for lineno, text in enumerate(
                source.read_text(encoding="utf-8").splitlines(),
                start=1):
            if f'"{experiment_id}"' in text:
                return rel.as_posix(), lineno
    return rel.as_posix(), 1


def check_registry_coverage(ids: Sequence[str] | None = None, *,
                            root: Path) -> list[Finding]:
    """Every experiment id has a bench/smoke script and a test."""
    if ids is None:
        from repro.harness.registry import REGISTRY

        ids = REGISTRY.ids()
    bench_dir = root / "benchmarks"
    test_dir = root / "tests"
    test_texts = [p.read_text(encoding="utf-8")
                  for p in sorted(test_dir.glob("test_*.py"))]
    findings = []
    hint = RULES["registry-coverage"].hint
    for experiment_id in ids:
        path, line = _experiment_anchor(root, experiment_id)
        scripts = (list(bench_dir.glob(f"bench_{experiment_id}*.py"))
                   + list(bench_dir.glob(f"smoke_{experiment_id}*.py")))
        if not scripts:
            findings.append(Finding(
                path=path, line=line, rule="registry-coverage",
                message=f"experiment {experiment_id!r} has no "
                        f"benchmarks/bench_{experiment_id}*.py or "
                        f"smoke_{experiment_id}*.py script",
                hint=hint))
        # Lookbehind instead of \b so underscore-joined references
        # (``t10_trigger_exclusion``, ``test_t10_no_violations``)
        # count as coverage.
        pattern = re.compile(
            rf"(?<![A-Za-z0-9]){re.escape(experiment_id)}")
        if not any(pattern.search(text) for text in test_texts):
            findings.append(Finding(
                path=path, line=line, rule="registry-coverage",
                message=f"experiment {experiment_id!r} is not "
                        "referenced by any test under tests/",
                hint=hint))
    return findings


def run_contracts(root: Path) -> list[Finding]:
    """The full contract pass against the live library."""
    findings = []
    findings += check_spec_codec(root=root)
    findings += check_capabilities(root=root)
    findings += check_equivalence_coverage(root=root)
    findings += check_registry_coverage(root=root)
    return findings


__all__ = [
    "CAPABILITY_FLAGS",
    "HASH_EXEMPT",
    "PINNED_DEFAULT_SPEC_HASH",
    "check_capabilities",
    "check_equivalence_coverage",
    "check_registry_coverage",
    "check_spec_codec",
    "run_contracts",
]
