"""The AST determinism pass: raw-rng, wall-clock, unordered-iter,
stream-label.

One :func:`lint_module` call scans one source file and returns its
per-site findings plus every statically-visible ``derive_seed`` stream
label it contains; :func:`cross_module_findings` then checks the
collected labels of a whole tree for collisions.  The pass is purely
syntactic — it never imports the code under scan — so it can run on a
broken tree and inside CI before any heavyweight import.

What the rules resolve
----------------------
``raw-rng``
    A call that constructs or reseeds a generator
    (``random.Random``/``random.seed``, numpy's
    ``default_rng``/``Generator``/``PCG64``/``RandomState``) outside
    :mod:`repro.sim.rng`, unless some argument visibly derives from
    :func:`~repro.sim.rng.derive_seed` — either a direct
    ``derive_seed(...)`` call in the argument expression or a local
    name previously assigned from one.  Import aliases are resolved
    (``import random as _random``, ``import numpy as np``,
    ``from random import Random``).

``wall-clock``
    A call to ``time.time``/``monotonic``/``perf_counter``/
    ``process_time`` (plus ``_ns`` forms) or
    ``datetime.now``/``utcnow``/``today`` anywhere outside the
    module allowlist (:data:`repro.lint.rules.ALLOWLIST`).

``unordered-iter``
    A ``for`` loop or comprehension whose iterable is statically
    set-shaped — a set literal/comprehension, ``set()``/
    ``frozenset()``, a ``.keys()`` call, a name assigned a set in the
    same scope, or a set-operator expression over those — and whose
    body schedules events, draws randomness, or builds an edge list.
    Wrapping the iterable in ``sorted(...)`` resolves it;
    ``list(...)``/``tuple(...)``/``iter(...)`` wrappers do not (they
    preserve the unordered order).

``stream-label``
    Per-site: a ``derive_seed`` label inside :mod:`repro.engine_vec`
    that does not carry the ``vec/`` prefix (the namespace that keeps
    vectorized draws from aliasing event-engine streams).  F-string
    labels are normalized to templates (``f"cell/{index}"`` →
    ``cell/{}``) so parameterized labels compare structurally;
    fully-dynamic labels (a bare variable) are invisible to the pass.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint.report import Finding
from repro.lint.rules import RNG_HOME_SUFFIX, RULES, is_allowlisted

#: Fully-resolved callables that construct or reseed a generator.
RAW_RNG_CALLS = frozenset({
    "random.Random", "random.seed", "random.SystemRandom",
    "numpy.random.default_rng", "numpy.random.Generator",
    "numpy.random.PCG64", "numpy.random.RandomState",
    "numpy.random.seed",
})

#: Fully-resolved callables that read the wall clock.
WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Method names whose call inside a loop body means the loop order
#: reaches the event stream.
SCHEDULING_METHODS = frozenset({
    "call_at", "call_after", "call_repeating", "call_at_key",
    "schedule", "heappush", "push", "send", "broadcast",
    "set_link_active", "apply_edge_event", "apply_node_event",
    "notify_cluster_edge", "deliver",
})

#: Method names that consume a random stream (draw order matters).
DRAW_METHODS = frozenset({
    "random", "uniform", "gauss", "normalvariate", "expovariate",
    "paretovariate", "lognormvariate", "triangular", "betavariate",
    "choice", "choices", "randint", "randrange", "getrandbits",
    "sample", "shuffle", "integers", "standard_normal", "normal",
    "poisson", "stream",
})

#: Container mutators that, on an edge-named receiver, mean the loop
#: builds an edge list.
_MUTATORS = frozenset({"append", "add", "extend"})

#: Path fragment marking the vectorized engine package.
_VEC_PACKAGE = "repro/engine_vec/"


@dataclass(frozen=True)
class StreamLabel:
    """One statically-visible ``derive_seed`` label site."""

    path: str
    line: int
    template: str


def _terminal_name(func: ast.expr) -> str | None:
    """The rightmost name of a call target (``a.b.c`` → ``c``)."""
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _is_derive_seed_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and _terminal_name(node.func) == "derive_seed")


def _fstring_template(node: ast.JoinedStr) -> str:
    parts = []
    for piece in node.values:
        if isinstance(piece, ast.Constant) and isinstance(piece.value,
                                                         str):
            parts.append(piece.value)
        else:
            parts.append("{}")
    return "".join(parts)


def _label_template(node: ast.expr) -> str | None:
    """Static template of a label expression, or ``None`` if dynamic."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        return _fstring_template(node)
    return None


class _Scope:
    """Name facts for one function (or the module body)."""

    def __init__(self) -> None:
        #: Names assigned from an expression containing derive_seed.
        self.derived: set[str] = set()
        #: Names assigned a statically set-shaped value.
        self.sets: set[str] = set()


class DeterminismVisitor(ast.NodeVisitor):
    """One-file walker producing findings and stream labels."""

    def __init__(self, relpath: str) -> None:
        self.relpath = relpath.replace("\\", "/")
        self.findings: list[Finding] = []
        self.labels: list[StreamLabel] = []
        #: import alias -> module dotted name ("np" -> "numpy").
        self._modules: dict[str, str] = {}
        #: from-import alias -> full dotted name
        #: ("Random" -> "random.Random").
        self._names: dict[str, str] = {}
        self._scopes: list[_Scope] = []
        self._rng_home = self.relpath.endswith(RNG_HOME_SUFFIX)
        self._in_vec = _VEC_PACKAGE in self.relpath

    # -- imports ------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._modules[alias.asname or alias.name.split(".")[0]] = \
                alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module:
            for alias in node.names:
                self._names[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
        self.generic_visit(node)

    def _resolve(self, func: ast.expr) -> str | None:
        """Dotted name of a call target with import aliases applied."""
        parts: list[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        parts.reverse()
        resolved = self._names.get(root)
        if resolved is not None:
            return ".".join([resolved] + parts)
        module = self._modules.get(root)
        if module is not None:
            return ".".join([module] + parts)
        return ".".join([root] + parts)

    # -- scope bookkeeping -------------------------------------------

    def _prescan(self, body: list[ast.stmt]) -> _Scope:
        """Collect name facts for a new scope before walking it."""
        scope = _Scope()
        for stmt in body:
            for node in ast.walk(stmt):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                value = node.value
                if value is None:
                    continue
                targets = (node.targets
                           if isinstance(node, ast.Assign)
                           else [node.target])
                names = [t.id for t in targets
                         if isinstance(t, ast.Name)]
                if not names:
                    continue
                if any(_is_derive_seed_call(sub)
                       for sub in ast.walk(value)):
                    scope.derived.update(names)
                if self._set_shape(value, scope) is not None:
                    scope.sets.update(names)
        return scope

    def visit_Module(self, node: ast.Module) -> None:
        self._scopes.append(self._prescan(node.body))
        self.generic_visit(node)
        self._scopes.pop()

    def _visit_function(self, node) -> None:
        self._scopes.append(self._prescan(node.body))
        self.generic_visit(node)
        self._scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def _name_derived(self, name: str) -> bool:
        return any(name in scope.derived for scope in self._scopes)

    def _name_set(self, name: str) -> bool:
        return any(name in scope.sets for scope in self._scopes)

    # -- raw-rng ------------------------------------------------------

    def _seed_is_derived(self, call: ast.Call) -> bool:
        """Some argument visibly flows from ``derive_seed``."""
        args = list(call.args) + [kw.value for kw in call.keywords]
        for arg in args:
            for sub in ast.walk(arg):
                if _is_derive_seed_call(sub):
                    return True
                if (isinstance(sub, ast.Name)
                        and self._name_derived(sub.id)):
                    return True
        return False

    def _check_raw_rng(self, node: ast.Call, dotted: str) -> None:
        if self._rng_home or is_allowlisted("raw-rng", self.relpath):
            return
        if self._seed_is_derived(node):
            return
        self.findings.append(Finding(
            path=self.relpath, line=node.lineno, rule="raw-rng",
            message=f"{dotted}(...) seeded outside the derive_seed "
                    "discipline",
            hint=RULES["raw-rng"].hint))

    # -- wall-clock ---------------------------------------------------

    def _check_wall_clock(self, node: ast.Call, dotted: str) -> None:
        if is_allowlisted("wall-clock", self.relpath):
            return
        self.findings.append(Finding(
            path=self.relpath, line=node.lineno, rule="wall-clock",
            message=f"{dotted}() reads the wall clock in a "
                    "deterministic module",
            hint=RULES["wall-clock"].hint))

    # -- stream-label -------------------------------------------------

    def _check_stream_label(self, node: ast.Call) -> None:
        label: ast.expr | None = None
        if len(node.args) >= 2:
            label = node.args[1]
        else:
            for kw in node.keywords:
                if kw.arg == "name":
                    label = kw.value
        if label is None:
            return
        template = _label_template(label)
        if template is None:
            return  # dynamic label; invisible to the static pass
        self.labels.append(StreamLabel(
            path=self.relpath, line=node.lineno, template=template))
        if self._in_vec and not template.startswith("vec/"):
            self.findings.append(Finding(
                path=self.relpath, line=node.lineno,
                rule="stream-label",
                message=f"vectorized stream label {template!r} is "
                        "missing the vec/ prefix",
                hint=RULES["stream-label"].hint))

    # -- unordered-iter -----------------------------------------------

    def _set_shape(self, node: ast.expr,
                   scope: _Scope | None = None) -> str | None:
        """Why ``node`` is statically unordered, or ``None``."""
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.SetComp):
            return "a set comprehension"
        if isinstance(node, ast.Call):
            name = _terminal_name(node.func)
            if name in ("set", "frozenset"):
                return f"{name}(...)"
            if (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "keys"):
                return ".keys()"
            if name in ("list", "tuple", "iter", "reversed",
                        "enumerate") and node.args:
                inner = self._set_shape(node.args[0], scope)
                if inner is not None:
                    return f"{name}({inner})"
            return None
        if isinstance(node, ast.Name):
            if scope is not None:
                if node.id in scope.sets:
                    return f"the set-typed name {node.id!r}"
            elif self._name_set(node.id):
                return f"the set-typed name {node.id!r}"
            return None
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            left = self._set_shape(node.left, scope)
            right = self._set_shape(node.right, scope)
            if left is not None or right is not None:
                return "a set-operator expression"
        return None

    def _sensitivity(self, nodes: list[ast.AST]) -> str | None:
        """Why a loop body is order-sensitive, or ``None``."""
        for top in nodes:
            for node in ast.walk(top):
                if not isinstance(node, ast.Call):
                    continue
                if isinstance(node.func, ast.Attribute):
                    attr = node.func.attr
                    if attr in SCHEDULING_METHODS:
                        return f"schedules events via .{attr}()"
                    if attr in DRAW_METHODS:
                        return f"draws randomness via .{attr}()"
                    if attr in _MUTATORS:
                        recv = _terminal_name(node.func.value)
                        if recv and "edge" in recv.lower():
                            return (f"builds an edge list via "
                                    f"{recv}.{attr}()")
        return None

    def _check_loop(self, iter_expr: ast.expr, body: list[ast.AST],
                    lineno: int) -> None:
        if is_allowlisted("unordered-iter", self.relpath):
            return
        shape = self._set_shape(iter_expr)
        if shape is None:
            return
        why = self._sensitivity(body)
        if why is None:
            return
        self.findings.append(Finding(
            path=self.relpath, line=lineno, rule="unordered-iter",
            message=f"iterating {shape} while the body {why}",
            hint=RULES["unordered-iter"].hint))

    def visit_For(self, node: ast.For) -> None:
        self._check_loop(node.iter, list(node.body), node.lineno)
        self.generic_visit(node)

    visit_AsyncFor = visit_For

    def _visit_comprehension(self, node) -> None:
        if isinstance(node, ast.DictComp):
            body: list[ast.AST] = [node.key, node.value]
        else:
            body = [node.elt]
        body += [gen.iter for gen in node.generators]
        body += [cond for gen in node.generators for cond in gen.ifs]
        for gen in node.generators:
            self._check_loop(gen.iter, body, node.lineno)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- the call dispatcher ------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if _is_derive_seed_call(node):
            self._check_stream_label(node)
        dotted = self._resolve(node.func)
        if dotted in RAW_RNG_CALLS:
            self._check_raw_rng(node, dotted)
        elif dotted in WALL_CLOCK_CALLS:
            self._check_wall_clock(node, dotted)
        self.generic_visit(node)


def lint_module(text: str, relpath: str
                ) -> tuple[list[Finding], list[StreamLabel]]:
    """Run the AST pass over one file's source text.

    Returns per-site findings (pre-suppression) and the stream labels
    found, for the caller's cross-module collision check.  Raises
    ``SyntaxError`` on unparsable source — the CLI surfaces that as a
    hard error rather than a finding.
    """
    tree = ast.parse(text, filename=relpath)
    visitor = DeterminismVisitor(relpath)
    visitor.visit(tree)
    return visitor.findings, visitor.labels


def cross_module_findings(labels: list[StreamLabel]) -> list[Finding]:
    """Stream-label collisions: one template derived from >1 module.

    Two modules deriving the same label share one RNG stream — their
    draws correlate, which silently breaks stream isolation.  Each
    site gets its own finding (so each can be pragma-suppressed where
    a shared stream is genuinely intended).
    """
    by_template: dict[str, list[StreamLabel]] = {}
    for label in labels:
        by_template.setdefault(label.template, []).append(label)
    findings = []
    for template, sites in sorted(by_template.items()):
        paths = sorted({site.path for site in sites})
        if len(paths) < 2:
            continue
        for site in sites:
            others = ", ".join(p for p in paths if p != site.path)
            findings.append(Finding(
                path=site.path, line=site.line, rule="stream-label",
                message=f"stream label {template!r} is also derived "
                        f"in {others} (shared stream, correlated "
                        "draws)",
                hint=RULES["stream-label"].hint))
    return findings


__all__ = [
    "DeterminismVisitor",
    "RAW_RNG_CALLS",
    "StreamLabel",
    "WALL_CLOCK_CALLS",
    "cross_module_findings",
    "lint_module",
]
