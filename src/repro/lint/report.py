"""Finding objects and report rendering for ``repro lint``.

A :class:`Finding` is one rule violation pinned to a ``file:line``.
Two renderers share the same finding list: :func:`format_text` (the
human form the CLI prints by default, one line per finding plus a
summary) and :func:`format_json` (the machine form CI uploads as an
artifact on failure — a stable top-level shape of ``{"findings":
[...], "counts": {...}, "total": N}``).

Ordering is canonical everywhere: findings sort by path, then line,
then rule id, so two runs over the same tree produce byte-identical
reports — the linter holds itself to the determinism bar it enforces.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field


@dataclass(frozen=True)
class Finding:
    """One rule violation at ``path:line``.

    ``path`` is repo-relative (posix separators); ``line`` is
    1-based, with ``1`` standing in for whole-file/contract findings
    that have no sharper anchor.  ``hint`` is the fix suggestion shown
    after the message.
    """

    path: str
    line: int
    rule: str
    message: str
    hint: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}"


@dataclass
class LintReport:
    """The outcome of one lint run: findings plus scan bookkeeping."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts(self) -> dict[str, int]:
        """``rule id -> finding count`` (sorted by rule id)."""
        tally: dict[str, int] = {}
        for finding in self.findings:
            tally[finding.rule] = tally.get(finding.rule, 0) + 1
        return dict(sorted(tally.items()))


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Canonical report order: path, line, rule, message."""
    return sorted(findings,
                  key=lambda f: (f.path, f.line, f.rule, f.message))


def format_text(report: LintReport) -> str:
    """The human-readable report (what ``repro lint`` prints)."""
    lines = []
    for finding in sort_findings(report.findings):
        line = (f"{finding.location()}: [{finding.rule}] "
                f"{finding.message}")
        if finding.hint:
            line += f"  (fix: {finding.hint})"
        lines.append(line)
    if report.findings:
        by_rule = ", ".join(f"{rule}: {count}"
                            for rule, count in report.counts().items())
        lines.append(f"{len(report.findings)} finding(s) across "
                     f"{report.files_scanned} file(s) ({by_rule})")
    else:
        lines.append(f"ok: 0 findings across {report.files_scanned} "
                     "file(s)")
    return "\n".join(lines)


def report_dict(report: LintReport) -> dict:
    """The JSON-safe report object (``--format json`` / ``--output``)."""
    return {
        "findings": [asdict(f) for f in sort_findings(report.findings)],
        "counts": report.counts(),
        "total": len(report.findings),
        "files_scanned": report.files_scanned,
        "ok": report.ok,
    }


def format_json(report: LintReport) -> str:
    return json.dumps(report_dict(report), indent=2, sort_keys=True)


__all__ = [
    "Finding",
    "LintReport",
    "format_json",
    "format_text",
    "report_dict",
    "sort_findings",
]
