"""Inline suppression pragmas: ``repro: allow[<rule>] -- <reason>``.

A pragma suppresses findings of the named rule(s) on its own line; a
pragma that is the *only* thing on its line covers the next
non-comment line instead (for statements too long to share a line
with their justification).  Several rules can share one pragma:
``allow[raw-rng,unordered-iter]``.

The reason after ``--`` is mandatory: a suppression without a recorded
justification is exactly the kind of unreviewable exception this
linter exists to prevent, so a bare pragma is itself a finding
(``bare-pragma``), as is a pragma naming a rule id that does not
exist (typos would otherwise silently suppress nothing).  Bare and
unknown-rule pragmas still suppress what they name — the finding
points at the pragma, not at the code it covers, so fixing the pragma
is one local edit.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.lint.report import Finding
from repro.lint.rules import RULES

#: The comment form ``repro: allow[rule-a,rule-b] -- reason``
#: (reason optional at the parse level; its absence is the
#: bare-pragma finding).
_PRAGMA = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[^\]]*)\]"
    r"(?:\s*--\s*(?P<reason>\S.*))?")

#: A line that holds nothing but the pragma comment (the standalone
#: form, which covers the following line).
_STANDALONE = re.compile(r"^\s*#")


@dataclass
class PragmaIndex:
    """Suppressions parsed from one source file.

    ``suppressions`` maps 1-based line numbers to the rule ids
    suppressed there.  Findings produced *by* the pragmas themselves
    (bare, unknown rule) are collected at parse time and are never
    suppressible — a pragma cannot vouch for itself.
    """

    suppressions: dict[int, set[str]] = field(default_factory=dict)
    findings: list[Finding] = field(default_factory=list)

    def suppressed(self, line: int, rule: str) -> bool:
        return rule in self.suppressions.get(line, ())


def parse_pragmas(text: str, relpath: str) -> PragmaIndex:
    """Scan ``text`` for pragmas; return the suppression index.

    Line-based on purpose: pragmas live in comments, which the AST
    pass never sees, and a regex over raw lines keeps the pragma
    syntax usable in any file the linter can read.  The false-positive
    risk (the pragma pattern inside a string literal) is accepted —
    the pattern is distinctive enough that an accidental match is
    effectively authored intent.
    """
    index = PragmaIndex()
    lines = text.splitlines()
    for lineno, line in enumerate(lines, start=1):
        match = _PRAGMA.search(line)
        if match is None:
            continue
        rules = {name.strip() for name in match.group("rules").split(",")
                 if name.strip()}
        reason = match.group("reason")
        unknown = sorted(name for name in rules if name not in RULES)
        if not rules:
            index.findings.append(Finding(
                path=relpath, line=lineno, rule="bare-pragma",
                message="pragma suppresses no rule",
                hint=RULES["bare-pragma"].hint))
        if unknown:
            index.findings.append(Finding(
                path=relpath, line=lineno, rule="bare-pragma",
                message=f"pragma names unknown rule(s): "
                        f"{', '.join(unknown)}",
                hint=RULES["bare-pragma"].hint))
        if reason is None and rules and not unknown:
            index.findings.append(Finding(
                path=relpath, line=lineno, rule="bare-pragma",
                message="pragma has no reason (need `-- <why>`)",
                hint=RULES["bare-pragma"].hint))
        target = lineno
        if _STANDALONE.match(line):
            # Standalone comment pragma: cover the next non-comment,
            # non-blank line.
            for offset, later in enumerate(lines[lineno:], start=1):
                stripped = later.strip()
                if stripped and not stripped.startswith("#"):
                    target = lineno + offset
                    break
        index.suppressions.setdefault(target, set()).update(rules)
        # The pragma's own line stays covered in the standalone form
        # too, so a finding anchored at the comment is suppressible.
        if target != lineno:
            index.suppressions.setdefault(lineno, set()).update(rules)
    return index


def apply_suppressions(findings: list[Finding],
                       index: PragmaIndex) -> list[Finding]:
    """Drop findings a pragma covers; pragma findings pass through."""
    kept = [finding for finding in findings
            if finding.rule == "bare-pragma"
            or not index.suppressed(finding.line, finding.rule)]
    return kept


__all__ = ["PragmaIndex", "apply_suppressions", "parse_pragmas"]
