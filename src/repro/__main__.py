"""``python -m repro`` — run the experiment suite from the shell."""

import sys

from repro.cli import main

sys.exit(main())
