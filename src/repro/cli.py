"""Command-line entry point: run the paper's experiments.

Usage::

    python -m repro t07              # one experiment, quick size
    python -m repro t01 t04 --full   # selected experiments, full size
    python -m repro --all            # everything, quick size
    python -m repro --list           # what's available

Experiment names are the T-identifiers of DESIGN.md section 3
(``t01`` … ``t12``).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.harness.experiments import ALL_EXPERIMENTS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the experiments of 'Fault Tolerant "
                    "Gradient Clock Synchronization' (PODC 2019).")
    parser.add_argument(
        "experiments", nargs="*", metavar="tNN",
        help="experiment ids (t01..t12); see --list")
    parser.add_argument(
        "--all", action="store_true",
        help="run every experiment in order")
    parser.add_argument(
        "--full", action="store_true",
        help="full-size sweeps (default: quick sizes)")
    parser.add_argument(
        "--list", action="store_true",
        help="list available experiments and exit")
    return parser


def list_experiments() -> str:
    lines = ["available experiments:"]
    for name in sorted(ALL_EXPERIMENTS):
        doc = (ALL_EXPERIMENTS[name].__doc__ or "").strip()
        summary = doc.splitlines()[0] if doc else ""
        lines.append(f"  {name}  {summary}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        print(list_experiments())
        return 0

    if args.all:
        names = sorted(ALL_EXPERIMENTS)
    else:
        names = [name.lower() for name in args.experiments]
    if not names:
        parser.print_usage()
        print("error: give experiment ids, --all, or --list",
              file=sys.stderr)
        return 2

    unknown = [name for name in names if name not in ALL_EXPERIMENTS]
    if unknown:
        print(f"error: unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        print(list_experiments(), file=sys.stderr)
        return 2

    for name in names:
        started = time.perf_counter()
        table = ALL_EXPERIMENTS[name](quick=not args.full)
        elapsed = time.perf_counter() - started
        print(table.format())
        print(f"[{name} finished in {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
