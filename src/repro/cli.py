"""Command-line entry point: run the paper's experiments.

Usage::

    python -m repro t07                  # one experiment, quick size
    python -m repro t01 t04 --full       # selected experiments, full size
    python -m repro --all                # everything, quick size
    python -m repro t09 --processes 4    # sweep-backed experiments in a pool
    python -m repro bench-quick          # kernel microbenchmarks (<60 s)
    python -m repro --list               # what's available

Experiment names are the T-identifiers of DESIGN.md section 3
(``t01`` … ``t12``).  ``bench-quick`` is the pre-merge smoke check: it
runs the substrate microbenchmarks of
:mod:`repro.harness.microbench` and prints a throughput table.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time
from typing import Sequence

from repro.harness.experiments import ALL_EXPERIMENTS

#: Non-experiment subcommands accepted in the positional slot.
BENCH_QUICK = "bench-quick"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the experiments of 'Fault Tolerant "
                    "Gradient Clock Synchronization' (PODC 2019).")
    parser.add_argument(
        "experiments", nargs="*", metavar="tNN",
        help=f"experiment ids (t01..t12) or '{BENCH_QUICK}'; see --list")
    parser.add_argument(
        "--all", action="store_true",
        help="run every experiment in order")
    parser.add_argument(
        "--full", action="store_true",
        help="full-size sweeps (default: quick sizes)")
    parser.add_argument(
        "--processes", type=int, default=None, metavar="N",
        help="worker processes for sweep-backed experiments "
             "(default: REPRO_SWEEP_PROCESSES or serial)")
    parser.add_argument(
        "--list", action="store_true",
        help="list available experiments and exit")
    return parser


def list_experiments() -> str:
    lines = ["available experiments:"]
    for name in sorted(ALL_EXPERIMENTS):
        doc = (ALL_EXPERIMENTS[name].__doc__ or "").strip()
        summary = doc.splitlines()[0] if doc else ""
        lines.append(f"  {name}  {summary}")
    lines.append(f"  {BENCH_QUICK}  kernel/substrate microbenchmarks "
                 "(pre-merge smoke check)")
    return "\n".join(lines)


def run_bench_quick(quick: bool = True,
                    processes: int | None = None) -> int:
    """Run the substrate microbenchmarks and print the table."""
    from repro.harness.microbench import microbench_table, run_all_micro

    started = time.perf_counter()
    results = run_all_micro(quick=quick, processes=processes)
    table = microbench_table(results)
    print(table.format())
    print(f"[{BENCH_QUICK} finished in "
          f"{time.perf_counter() - started:.1f}s]")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        print(list_experiments())
        return 0

    positionals = [name.lower() for name in args.experiments]
    if BENCH_QUICK in positionals:
        if len(positionals) > 1 or args.all:
            print(f"error: {BENCH_QUICK} cannot be combined with "
                  "experiment ids or --all", file=sys.stderr)
            return 2
        return run_bench_quick(quick=not args.full,
                               processes=args.processes)

    names = sorted(ALL_EXPERIMENTS) if args.all else positionals
    if not names:
        parser.print_usage()
        print("error: give experiment ids, --all, or --list",
              file=sys.stderr)
        return 2

    unknown = [name for name in names if name not in ALL_EXPERIMENTS]
    if unknown:
        print(f"error: unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        print(list_experiments(), file=sys.stderr)
        return 2

    for name in names:
        fn = ALL_EXPERIMENTS[name]
        kwargs = {"quick": not args.full}
        # Sweep-backed experiments fan across a worker pool.
        if "processes" in inspect.signature(fn).parameters:
            kwargs["processes"] = args.processes
        started = time.perf_counter()
        table = fn(**kwargs)
        elapsed = time.perf_counter() - started
        print(table.format())
        print(f"[{name} finished in {elapsed:.1f}s]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
