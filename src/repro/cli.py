"""Command-line entry point: the experiment registry, on the shell.

Usage::

    python -m repro run t07                    # one experiment, quick
    python -m repro run t01 t04 --full         # selected, full size
    python -m repro run --all --processes 4    # everything, in a pool
    python -m repro run t05 --seed 99          # override the seed
    python -m repro run t08 --format json      # machine-readable output
    python -m repro run t01 --save out.json    # write the table to a file
    python -m repro list                       # what's available
    python -m repro show t09                   # metadata + grid sizes
    python -m repro bench-quick                # pre-merge smoke (<60 s)
    python -m repro serve --port 8765          # the HTTP simulation service
    python -m repro cache stats                # result-cache maintenance
    python -m repro lint                       # determinism & contract lint

Experiment ids are the T-identifiers of DESIGN.md section 3
(``t01`` … ``t18``); every one of them executes through
:func:`~repro.harness.registry.run_experiment` and the parallel sweep
engine, so ``--processes`` applies everywhere.  The bare legacy forms
(``python -m repro t07``, ``python -m repro --list``) still work and
map onto ``run``/``list``.

``bench-quick`` is the pre-merge smoke check: the substrate
microbenchmarks of :mod:`repro.harness.microbench` plus one registry
experiment end-to-end (so the registry wiring is covered before
merging).

Output formats: ``table`` (aligned text, the default), ``json`` (one
JSON array of table objects), ``csv`` (header + raw rows per table).
Machine formats keep stdout pure — progress lines go to stderr.
``--save PATH`` additionally writes the finished tables to a file,
picking ``Table.to_json`` or ``Table.to_csv`` by extension (``.json``
/ ``.csv``; anything else errors out before any experiment runs).

``serve`` starts the HTTP simulation service (async job manager +
content-addressed result cache over the sweep engine; see
:mod:`repro.service.app`); ``cache stats`` / ``cache clear`` maintain
the on-disk result store it serves from.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.errors import ConfigError
from repro.harness.registry import REGISTRY, run_experiment

#: Subcommand names (the legacy shim treats anything else as `run` ids).
COMMANDS = ("run", "list", "show", "bench-quick", "serve", "cache",
            "lint")
BENCH_QUICK = "bench-quick"

#: Extensions `run --save` understands, mapped to the Table writer.
SAVE_FORMATS = (".json", ".csv")

#: Registry experiment smoke-run by ``bench-quick`` (sweep-backed and
#: fast, so the registry -> sweep -> table path is covered pre-merge).
BENCH_SMOKE_EXPERIMENT = "t12"

#: Allowed relative event-throughput regression against the recorded
#: ``BENCH_kernel.json`` baseline before ``bench-quick`` complains.
BASELINE_TOLERANCE = 0.10


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the experiments of 'Fault Tolerant "
                    "Gradient Clock Synchronization' (PODC 2019).")
    sub = parser.add_subparsers(dest="command")

    run_p = sub.add_parser(
        "run", help="run experiments through the registry")
    run_p.add_argument(
        "ids", nargs="*", metavar="tNN",
        help="experiment ids (t01..t18); see 'list'")
    run_p.add_argument(
        "--all", action="store_true",
        help="run every experiment in order")
    size = run_p.add_mutually_exclusive_group()
    size.add_argument(
        "--quick", dest="full", action="store_false",
        help="CI-sized sweeps (the default)")
    size.add_argument(
        "--full", dest="full", action="store_true",
        help="full-size sweeps (EXPERIMENTS.md sizes)")
    run_p.set_defaults(full=False)
    run_p.add_argument(
        "--processes", type=int, default=None, metavar="N",
        help="worker processes for the sweep engine "
             "(default: REPRO_SWEEP_PROCESSES or serial)")
    run_p.add_argument(
        "--seed", type=int, default=None, metavar="S",
        help="override the experiment's registered seed")
    run_p.add_argument(
        "--engine", choices=("event", "vectorized"), default=None,
        help="override the execution backend of every protocol cell "
             "(vectorized: the numpy round engine; the protocols must "
             "support it)")
    run_p.add_argument(
        "--format", choices=("table", "json", "csv"), default="table",
        help="output format (default: table)")
    run_p.add_argument(
        "--save", metavar="PATH", default=None,
        help="also write the finished table(s) to PATH; the "
             "extension picks the writer (.json: a JSON array of "
             "table objects, .csv: concatenated CSV)")

    list_p = sub.add_parser(
        "list", help="list registered experiments")
    list_p.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="output format (default: table)")

    show_p = sub.add_parser(
        "show", help="metadata and grid sizes of one experiment")
    show_p.add_argument("id", metavar="tNN", help="experiment id")

    bench_p = sub.add_parser(
        BENCH_QUICK,
        help="kernel/substrate microbenchmarks + one registry "
             "experiment (pre-merge smoke check)")
    bench_p.add_argument(
        "--full", action="store_true",
        help="full-size microbenchmarks")
    bench_p.add_argument(
        "--processes", type=int, default=None, metavar="N",
        help="worker processes for sweep-backed microbenchmarks")
    bench_p.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) when event throughput falls more than "
             f"{int(BASELINE_TOLERANCE * 100)}%% below the latest "
             "BENCH_kernel.json baseline (always printed as a "
             "warning otherwise)")

    serve_p = sub.add_parser(
        "serve",
        help="HTTP simulation service: async jobs + content-addressed "
             "result cache over the sweep engine")
    serve_p.add_argument(
        "--host", default="127.0.0.1", help="bind address")
    serve_p.add_argument(
        "--port", type=int, default=8765, metavar="N",
        help="listen port (default: 8765)")
    serve_p.add_argument(
        "--processes", type=int, default=None, metavar="N",
        help="warm-pool worker processes per job batch "
             "(default: REPRO_SWEEP_PROCESSES or serial)")
    serve_p.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="concurrent job-consumer threads (default: 1)")
    serve_p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache directory "
             "(default: REPRO_CACHE_DIR or ~/.cache/repro/results)")
    serve_p.add_argument(
        "--scenarios", default=None, metavar="DIR",
        help="scenario library directory served at GET /scenarios")

    cache_p = sub.add_parser(
        "cache", help="inspect or clear the on-disk result cache")
    cache_p.add_argument(
        "action", choices=("stats", "clear"),
        help="'stats' prints entry count and bytes; 'clear' removes "
             "every entry")
    cache_p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache directory "
             "(default: REPRO_CACHE_DIR or ~/.cache/repro/results)")

    lint_p = sub.add_parser(
        "lint",
        help="determinism & contract static analysis over src/ "
             "(exit 1 on findings)")
    lint_p.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to scan (default: all of src/)")
    lint_p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format on stdout (default: text)")
    lint_p.add_argument(
        "--output", metavar="PATH", default=None,
        help="also write the JSON report to PATH (written even when "
             "findings fail the run, so CI can upload it)")
    lint_p.add_argument(
        "--no-contracts", dest="contracts", action="store_false",
        help="skip the import-and-introspect contract pass (AST "
             "rules only; useful on partial checkouts)")

    return parser


def _rewrite_legacy_argv(argv: Sequence[str]) -> list[str]:
    """Map the pre-registry surface onto subcommands.

    ``repro --list`` -> ``repro list``; ``repro t07 [flags]`` ->
    ``repro run t07 [flags]``.  Already-subcommand argv is untouched.
    """
    argv = list(argv)
    if not argv:
        return argv
    if argv[0] in COMMANDS:
        return argv
    if "--list" in argv:
        return ["list"]
    if argv[0].startswith("-"):
        # Top-level flags (-h/--help) go to the root parser; a legacy
        # id followed by --help falls through and shows `run --help`.
        return argv
    return ["run"] + argv


def list_experiments() -> str:
    """The ``list`` subcommand's text form."""
    lines = ["available experiments:"]
    for experiment in REGISTRY:
        lines.append(f"  {experiment.id}  {experiment.title}")
    lines.append(f"  {BENCH_QUICK}  kernel/substrate microbenchmarks "
                 "(pre-merge smoke check)")
    return "\n".join(lines)


def _cmd_list(args: argparse.Namespace) -> int:
    if args.format == "json":
        import json

        entries = [{"id": e.id, "title": e.title, "claim": e.claim,
                    "columns": list(e.columns),
                    "default_seed": e.default_seed}
                   for e in REGISTRY]
        print(json.dumps(entries, indent=2))
        return 0
    print(list_experiments())
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    id = args.id.lower()
    if id not in REGISTRY:
        print(f"error: unknown experiment {args.id!r}", file=sys.stderr)
        print(list_experiments(), file=sys.stderr)
        return 2
    experiment = REGISTRY.get(id)
    quick_cells = len(experiment.plan(quick=True,
                                      seed=experiment.default_seed).specs)
    full_cells = len(experiment.plan(quick=False,
                                     seed=experiment.default_seed).specs)
    print(f"{experiment.id}  {experiment.title}")
    print(f"  claim: {experiment.claim}")
    print(f"  columns: {', '.join(experiment.columns)}")
    print(f"  grid: {quick_cells} cells quick, {full_cells} cells full")
    print(f"  default seed: {experiment.default_seed}")
    if experiment.tags:
        print(f"  tags: {', '.join(experiment.tags)}")
    return 0


def _save_tables(tables, path: str) -> None:
    """Write finished tables to ``path`` via the ``Table`` writers.

    ``.json`` holds a JSON array of table objects (matching the
    ``--format json`` stdout shape); ``.csv`` concatenates each
    table's ``to_csv`` form.  The extension is validated *before* any
    experiment runs (see ``_cmd_run``).
    """
    import json as json_
    from pathlib import Path

    target = Path(path)
    if target.suffix == ".json":
        text = json_.dumps([table.to_dict(json_safe=True)
                            for table in tables], indent=2,
                           allow_nan=False) + "\n"
    else:
        text = "".join(table.to_csv() for table in tables)
    target.write_text(text, encoding="utf-8")


def _cmd_run(args: argparse.Namespace) -> int:
    ids = [id.lower() for id in args.ids]
    if args.all:
        ids = REGISTRY.ids()
    if not ids:
        print("error: give experiment ids, --all, or use 'list'",
              file=sys.stderr)
        return 2
    unknown = [id for id in ids if id not in REGISTRY]
    if unknown:
        print(f"error: unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        print(list_experiments(), file=sys.stderr)
        return 2
    if args.save is not None:
        from pathlib import Path

        suffix = Path(args.save).suffix.lower()
        if suffix not in SAVE_FORMATS:
            # Fail before running anything: a minutes-long sweep must
            # not end in an unwritable result.
            print(f"error: --save needs a {' or '.join(SAVE_FORMATS)} "
                  f"extension, got {args.save!r}", file=sys.stderr)
            return 2

    machine = args.format in ("json", "csv")
    status = sys.stderr if machine else sys.stdout
    tables = []
    for id in ids:
        # repro: allow[wall-clock] -- elapsed-time status line on
        # stderr; never part of the table bytes.
        started = time.perf_counter()
        try:
            table = run_experiment(id, quick=not args.full,
                                   processes=args.processes,
                                   seed=args.seed, engine=args.engine)
        except ConfigError as error:
            # Eager build-time rejections (e.g. --engine vectorized on
            # a plan with event-only cells) are user errors, not bugs.
            print(f"error: {error}", file=sys.stderr)
            return 2
        # repro: allow[wall-clock] -- same status-line measurement.
        elapsed = time.perf_counter() - started
        tables.append(table)
        if not machine:
            print(table.format())
        print(f"[{id} finished in {elapsed:.1f}s]", file=status)
        if not machine:
            print()
    if args.format == "json":
        import json

        print(json.dumps([table.to_dict(json_safe=True)
                          for table in tables], allow_nan=False))
    elif args.format == "csv":
        # to_csv() is newline-terminated; plain concatenation keeps
        # the stream free of blank records for csv readers.
        print("".join(table.to_csv() for table in tables), end="")
    if args.save is not None:
        _save_tables(tables, args.save)
        print(f"[saved {len(tables)} table(s) to {args.save}]",
              file=status)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:  # pragma: no cover
    from repro.service.app import serve

    serve(host=args.host, port=args.port, cache_dir=args.cache_dir,
          scenario_dir=args.scenarios, processes=args.processes,
          workers=args.workers)
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.service.store import ResultStore

    store = ResultStore(args.cache_dir)
    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} cached result(s) from {store.root}")
        return 0
    stats = store.stats()
    print(f"cache root: {stats['root']}")
    print(f"entries:    {stats['entries']}")
    print(f"bytes:      {stats['bytes']}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import repo_root, run_lint
    from repro.lint.report import format_json, format_text

    root = repo_root()
    paths = args.paths or None
    report = run_lint(root=root, paths=paths, contracts=args.contracts)
    if args.format == "json":
        print(format_json(report))
    else:
        print(format_text(report))
    if args.output is not None:
        from pathlib import Path

        Path(args.output).write_text(format_json(report) + "\n",
                                     encoding="utf-8")
        print(f"[lint report written to {args.output}]",
              file=sys.stderr)
    return 0 if report.ok else 1


def _baseline_event_throughput() -> float | None:
    """Latest recorded ``event_throughput`` rate from
    ``BENCH_kernel.json`` (searched at the repo root relative to this
    package, then the working directory), or ``None``."""
    import json
    from pathlib import Path

    candidates = [Path(__file__).resolve().parents[2] / "BENCH_kernel.json",
                  Path("BENCH_kernel.json")]
    for path in candidates:
        if not path.is_file():
            continue
        try:
            history = json.loads(path.read_text())
            entry = history[-1]
            return float(
                entry["results"]["event_throughput"]["events_per_second"])
        except (json.JSONDecodeError, KeyError, IndexError, TypeError,
                ValueError):
            return None
    return None


def _check_baseline(results: list[dict], strict: bool) -> int:
    """Compare measured event throughput against the recorded baseline.

    Within ``BASELINE_TOLERANCE`` (or faster) passes silently with one
    status line; a larger regression prints a warning and — only with
    ``strict`` (``make bench-quick`` / ``--check``) — fails the run.
    CI invokes the plain form, so there the warning is non-fatal
    (shared runners are too noisy to gate merges on wall clock).
    """
    baseline = _baseline_event_throughput()
    if baseline is None or baseline <= 0:
        print("[baseline: no usable BENCH_kernel.json entry; skipping "
              "throughput check]", file=sys.stderr)
        return 0
    measured = next(
        (r["events_per_second"] for r in results
         if r["name"] == "event_throughput"), None)
    if measured is None:
        return 0
    ratio = measured / baseline
    if ratio >= 1.0 - BASELINE_TOLERANCE:
        print(f"[baseline: event throughput at {ratio:.0%} of "
              f"BENCH_kernel.json ({measured:,.0f} vs "
              f"{baseline:,.0f} events/s) — ok]", file=sys.stderr)
        return 0
    print(f"warning: event throughput regressed to {ratio:.0%} of the "
          f"recorded baseline ({measured:,.0f} vs {baseline:,.0f} "
          f"events/s; tolerance {BASELINE_TOLERANCE:.0%})",
          file=sys.stderr)
    return 1 if strict else 0


def run_bench_quick(quick: bool = True,
                    processes: int | None = None,
                    check: bool = False) -> int:
    """Substrate microbenchmarks plus one registry experiment.

    ``check=True`` (``--check``; what ``make bench-quick`` passes)
    turns a >10% event-throughput regression against
    ``BENCH_kernel.json`` into a failure instead of a warning.
    """
    from repro.harness.microbench import microbench_table, run_all_micro

    # repro: allow[wall-clock] -- bench-quick is the wall-clock
    # measurement harness itself.
    started = time.perf_counter()
    results = run_all_micro(quick=quick, processes=processes)
    table = microbench_table(results)
    print(table.format())
    status = _check_baseline(results, strict=check)
    # One registry experiment end-to-end: covers the registry -> plan
    # -> sweep -> table wiring before merging.
    smoke = run_experiment(BENCH_SMOKE_EXPERIMENT, quick=True,
                           processes=processes)
    print()
    print(smoke.format())
    print(f"[registry smoke: {BENCH_SMOKE_EXPERIMENT} ok, "
          f"{len(smoke.rows)} rows]")
    # repro: allow[wall-clock] -- bench harness elapsed-time line.
    elapsed = time.perf_counter() - started
    print(f"[{BENCH_QUICK} finished in {elapsed:.1f}s]")
    return status


def main(argv: Sequence[str] | None = None) -> int:
    if argv is None:  # pragma: no cover - shell entry
        argv = sys.argv[1:]
    parser = build_parser()
    try:
        args = parser.parse_args(_rewrite_legacy_argv(argv))
    except SystemExit as exit_:  # argparse error or --help
        code = exit_.code
        return code if isinstance(code, int) else 2

    if args.command == "list":
        return _cmd_list(args)
    if args.command == "show":
        return _cmd_show(args)
    if args.command == BENCH_QUICK:
        return run_bench_quick(quick=not args.full,
                               processes=args.processes,
                               check=args.check)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "serve":  # pragma: no cover - blocking server
        return _cmd_serve(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "lint":
        return _cmd_lint(args)
    parser.print_usage()
    print("error: give a subcommand (run, list, show, bench-quick, "
          "serve, cache, lint)", file=sys.stderr)
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
