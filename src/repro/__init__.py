"""repro — Fault Tolerant Gradient Clock Synchronization (PODC 2019).

A production-quality reproduction of *Fault Tolerant Gradient Clock
Synchronization* by Bund, Lenzen, and Rosenbaum: a discrete-event
simulation substrate with exact piecewise-constant clocks, the paper's
cluster algorithm (amortized Lynch–Welch), the intercluster GCS
simulation, Byzantine fault strategies, baselines, and an experiment
harness validating every bound the paper proves.

Quickstart
----------
>>> from repro import ClusterGraph, Parameters, FtgcsSystem
>>> params = Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1)
>>> system = FtgcsSystem.build(ClusterGraph.line(4), params, seed=7)
>>> result = system.run_rounds(20)
"""

from repro.clocks import (
    ConstantRate,
    FlipRate,
    HardwareClock,
    JitterRate,
    LogicalClock,
    RandomWalkRate,
    RateModel,
    ScaledClock,
    ScheduleRate,
)
from repro.errors import (
    ClockError,
    ConfigError,
    NetworkError,
    ParameterError,
    ReproError,
    SimulationError,
    TopologyError,
)
from repro.net import Network, Pulse, PulseKind, UniformDelay
from repro.sim import RngRegistry, Simulator
from repro.topology import AugmentedGraph, ClusterGraph

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError", "SimulationError", "ClockError", "TopologyError",
    "ParameterError", "NetworkError", "ConfigError",
    # substrate
    "Simulator", "RngRegistry",
    "HardwareClock", "LogicalClock", "ScaledClock", "RateModel",
    "ConstantRate", "FlipRate", "ScheduleRate", "RandomWalkRate",
    "JitterRate",
    "Network", "UniformDelay", "Pulse", "PulseKind",
    "ClusterGraph", "AugmentedGraph",
]

try:  # Core layers are appended as they are built on top of the substrate.
    from repro.core import (  # noqa: F401
        ClusterSyncNode,
        FtgcsNode,
        FtgcsSystem,
        Parameters,
        ProtocolRunResult,
        RoundSchedule,
        SyncProtocol,
        SystemBuilder,
        register_protocol,
    )
    from repro.topology import (  # noqa: F401
        AdversarialSweepSchedule,
        EdgeChurnSchedule,
        RewireSchedule,
        TIntervalSchedule,
        TopologySchedule,
    )

    __all__ += [
        "Parameters", "RoundSchedule", "ClusterSyncNode", "FtgcsNode",
        "FtgcsSystem",
        "SyncProtocol", "SystemBuilder", "ProtocolRunResult",
        "register_protocol",
        "TopologySchedule", "EdgeChurnSchedule", "RewireSchedule",
        "TIntervalSchedule", "AdversarialSweepSchedule",
    ]
except ImportError:  # pragma: no cover - during bootstrap only
    pass

try:  # The declarative experiment API (see API.md).
    from repro.harness import (  # noqa: F401
        REGISTRY,
        ExperimentRegistry,
        Scenario,
        ScenarioSpec,
        SweepCellResult,
        SweepRunner,
        Table,
        run_experiment,
        run_scenario,
        spec_hash,
    )

    __all__ += [
        "REGISTRY", "ExperimentRegistry", "Scenario", "ScenarioSpec",
        "SweepCellResult", "SweepRunner", "Table", "run_experiment",
        "run_scenario", "spec_hash",
    ]
except ImportError:  # pragma: no cover - during bootstrap only
    pass

try:  # The simulation service (see repro.service.app for the REST
    # surface; the library half needs no Flask).
    from repro.service import (  # noqa: F401
        JobManager,
        ResultStore,
        ScenarioLibrary,
    )

    __all__ += ["JobManager", "ResultStore", "ScenarioLibrary"]
except ImportError:  # pragma: no cover - during bootstrap only
    pass
