"""The built-in :class:`~repro.core.protocol.SyncProtocol` adapters.

Every algorithm in the library — the paper's FTGCS construction, the
standalone Lynch–Welch clique, and the three baselines — implements
the unified protocol interface here, so one
:class:`~repro.core.protocol.SystemBuilder` composes any of them with
topologies, topology schedules, fault strategies, and clock/delay
models, and every run returns one
:class:`~repro.core.protocol.ProtocolRunResult` shape.

The adapters deliberately delegate to the existing engine classes
(``FtgcsSystem``, ``LynchWelchSystem``, ``MasterSlaveSystem``,
``GcsSingleSystem``, ``SrikanthTouegSystem``) rather than re-wiring
nodes themselves: RNG stream consumption, event ordering, and
measurement cadence therefore stay *bit-identical* to the historical
per-algorithm paths — the property the experiment tables rely on.

Capability summary:

============== ======== ========= ============= ====== ========== ======= =========
protocol       faults   dynamic   first-contact churn  vectorized graph   params in
============== ======== ========= ============= ====== ========== ======= =========
ftgcs          yes      yes       yes           yes    yes        yes     ``.params``
lynch_welch    yes      no        no            no     yes        no      ``.params``
master_slave   no       no        no            links  no         yes     ``.params``
gcs_single     liars*   yes       no            yes    yes        yes     ``payload["params"]``
srikanth_toueg silent*  no        no            no     yes        no      ``payload["params"]``
============== ======== ========= ============= ====== ========== ======= =========

``*`` — these baselines model faults through protocol-specific payload
knobs (``liars``, ``silent_faults``) rather than the named-strategy
model, so their ``supports_faults`` flag is ``False``.

The engine-agnostic adversary layer (:mod:`repro.faults.adversary`,
``SystemBuilder.adversary(...)``) sits above both mechanisms: on the
event kernel it realizes through the strategy adapters (FTGCS family)
or the native payload knobs (``gcs_single`` equivocate → ``liars``,
``srikanth_toueg`` silent → ``silent_faults``), and on the vectorized
engine through per-round fault-vector injection for the protocols
declaring ``supports_vectorized_faults`` (``ftgcs``, ``gcs_single``,
``srikanth_toueg``).  Every adversarial run reports the uniform
``ProtocolRunResult.adversary`` counters block.

``churn = links`` — master–slave applies node churn as link silencing
only (a crashed slave stops hearing its master and coasts; its
estimator state survives the outage).  The full crash-with-amnesia
model needs a protocol bring-up path, which only ``ftgcs`` (the PR 4
first-contact machinery) and ``gcs_single`` (estimate amnesia plus
cadence re-anchor) implement.

``vectorized = yes`` — the protocol has a struct-of-arrays round model
in :mod:`repro.engine_vec.protocols`, selectable via
``SystemBuilder.engine("vectorized")`` (static topologies only; the
engines' equivalence contract is documented and enforced by
:mod:`repro.engine_vec.equivalence`).  Master–slave stays event-only:
its tree-slaved chase logic is estimator-cascade-ordered, not
round-structured.

Every adapter also reports the fault-injection counters —
``messages_lost`` (random loss), ``dropped_link_down``,
``node_crashes``/``node_rejoins``, and ``stabilization_time`` where a
local-skew series exists — via :func:`_fault_counters`.
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.metrics import stabilization_time
from repro.baselines.gcs_single import GcsSingleSystem
from repro.baselines.lynch_welch import LynchWelchSystem
from repro.baselines.master_slave import MasterSlaveSystem
from repro.baselines.srikanth_toueg import SrikanthTouegSystem
from repro.core.protocol import (
    BuildContext,
    ProtocolRunResult,
    SyncProtocol,
    register_protocol,
)
from repro.core.system import FtgcsSystem, SystemConfig
from repro.errors import ConfigError
from repro.faults.adversary import (
    get_adversary,
    resolve_strategy,
    stride_placement,
    validate_event_support,
)
from repro.faults.placement import place_everywhere
from repro.faults.strategies import STRATEGIES  # noqa: F401  (re-export)


def _fault_counters(protocol: SyncProtocol) -> dict:
    """The fault-injection fields shared by every adapter's result."""
    network = protocol.network
    return {
        "messages_lost": network.dropped_loss,
        "dropped_link_down": network.dropped_link_down,
        "node_crashes": protocol.node_crashes,
        "node_rejoins": protocol.node_rejoins,
        "adversary": protocol.adversary_counters,
    }


def _strategy_factory(name: str, args: tuple):
    cls = resolve_strategy(name)
    return lambda _node, _cls=cls, _args=args: _cls(*_args)


def _event_adversary(protocol: SyncProtocol, ctx: BuildContext):
    """Resolve ``ctx.adversary`` for an event-engine build.

    Returns the constructed model (or ``None``), records the uniform
    counters block on the protocol, and re-checks realizability — the
    builder validates eagerly, but direct ``BuildContext`` users get
    the same error here.
    """
    if ctx.adversary is None:
        return None
    model = get_adversary(**ctx.adversary)
    mechanism = validate_event_support(model, protocol.name)
    protocol.adversary_counters = {
        **model.spec(),
        "mechanism": mechanism,
        "engine": "event",
    }
    return model


def prepare_ftgcs_config(graph, params, config=None,
                         strategy_factory=None,
                         faults_per_cluster=None) -> SystemConfig:
    """Measurement defaults + fault placement for an FTGCS-family run.

    The single source of truth shared by the ``ftgcs``/``lynch_welch``
    protocols and the direct :func:`repro.harness.runner.run_scenario`
    path: sample interval defaults to a quarter round, the series and
    per-edge maxima are always recorded, and a strategy factory places
    ``faults_per_cluster`` (default ``params.f``) faults in every
    cluster.  The passed ``config`` is never modified — defaults are
    applied to a private copy.
    """
    config = replace(config) if config is not None else SystemConfig()
    if config.sample_interval is None:
        config.sample_interval = params.round_length / 4.0
    config.record_series = True
    config.track_edges = True
    if strategy_factory is not None:
        per_cluster = (faults_per_cluster if faults_per_cluster
                       is not None else params.f)
        aug = graph.augment(params.cluster_size)
        config.byzantine = place_everywhere(aug, per_cluster,
                                            strategy_factory)
    return config


@register_protocol
class FtgcsProtocol(SyncProtocol):
    """The paper's fault-tolerant gradient construction.

    ``ctx.config`` carries :class:`~repro.core.system.SystemConfig`
    kwargs.  Measurement defaults match the historical
    ``run_scenario`` path: the sample interval defaults to a quarter
    round and the series/edge maxima are always recorded.
    """

    name = "ftgcs"
    supports_faults = True
    supports_dynamic_topology = True
    supports_first_contact = True
    supports_node_churn = True
    supports_vectorized = True
    supports_vectorized_faults = True

    system_class = FtgcsSystem

    def _make_system(self, graph, params, seed,
                     config: SystemConfig) -> FtgcsSystem:
        return self.system_class.build(graph, params, seed=seed,
                                       config=config)

    def build_nodes(self, ctx: BuildContext) -> None:
        params = ctx.params
        strategy_factory = None
        faults_per_cluster = ctx.faults_per_cluster
        if ctx.strategy is not None:
            strategy_factory = _strategy_factory(ctx.strategy,
                                                 ctx.strategy_args)
        model = _event_adversary(self, ctx)
        if model is not None:
            # The adversary's act phase IS the re-homed strategy
            # driver — same factory path, bit-identical placement.
            strategy_factory = _strategy_factory(*model.event_strategy())
            if model.count is not None:
                faults_per_cluster = model.count
            self.adversary_counters.update(
                count=(faults_per_cluster if faults_per_cluster
                       is not None else params.f))
        config = prepare_ftgcs_config(
            ctx.graph, params,
            config=SystemConfig(**ctx.config) if ctx.config else None,
            strategy_factory=strategy_factory,
            faults_per_cluster=faults_per_cluster)
        if ctx.first_contact:
            config.dynamic_estimators = True
        self.system = self._make_system(ctx.graph, params, ctx.seed,
                                        config)
        self.sim = self.system.sim
        self.network = self.system.network

    def start(self) -> None:
        self.system.start()

    def horizon(self) -> float:
        rounds = self.ctx.rounds
        if rounds < 1:
            raise ConfigError(f"rounds must be >= 1: {rounds!r}")
        width = self.system.config.init_jitter
        if width is None:
            width = self.system.params.cap_e / 4.0
        return (self.sim.now + self.system.schedule.round_start(rounds + 1)
                + width + 1.0)

    def collect(self) -> ProtocolRunResult:
        result = self.system.result()
        return ProtocolRunResult(
            protocol=self.name, seed=self.ctx.seed,
            max_global_skew=result.max_global_skew,
            max_local_skew=result.max_local_cluster_skew,
            series=result.series, edge_maxima=result.edge_maxima,
            messages_sent=result.messages_sent,
            messages_dropped=self.network.messages_dropped,
            events_processed=result.events_processed,
            reannounce_cap_hits=result.reannounce_cap_hits,
            stabilization_time=result.stabilization_time,
            **_fault_counters(self),
            detail=result)

    def edge_links(self, a: int, b: int) -> tuple:
        graph = self.system.graph
        return tuple((na, nb) for na in graph.members(a)
                     for nb in graph.members(b))

    def cluster_nodes(self, cluster: int) -> tuple:
        return self.system.graph.members(cluster)

    def apply_edge_event(self, edge, active) -> None:
        # Links first, then the first-contact notification, so nodes
        # reacting to the event (max-pulse re-announcement) see the
        # link in its new state.
        super().apply_edge_event(edge, active)
        self.system.notify_cluster_edge(edge, active)

    def apply_node_event(self, cluster, alive,
                         drop_in_flight: bool = False) -> None:
        # Crash: links down first so the dying cluster's final pulses
        # cannot leak out, then the engine-level crash (state loss).
        # Rejoin: links up first so the bring-up path can immediately
        # hear live neighbors, then the amnesiac restart.
        if alive:
            self._apply_node_links(cluster, True)
            self.system.rejoin_cluster(cluster)
        else:
            self._apply_node_links(cluster, False,
                                   drop_in_flight=drop_in_flight)
            self.system.crash_cluster(cluster)

    def analysis_system(self) -> FtgcsSystem:
        return self.system


@register_protocol
class LynchWelchProtocol(FtgcsProtocol):
    """The amortized Lynch–Welch clique algorithm, standalone.

    Graph-free: the topology defaults to a single cluster
    (``ClusterGraph.line(1)``); passing a multi-cluster graph is an
    error.  Everything else — faults, config, measurement — matches
    the FTGCS protocol on that single cluster exactly.
    """

    name = "lynch_welch"
    needs_graph = False
    supports_dynamic_topology = False
    supports_first_contact = False  # single cluster: no estimators
    supports_node_churn = False  # crashing the only cluster ends the run
    supports_vectorized = True  # classic trimmed approximate agreement

    system_class = LynchWelchSystem

    def _make_system(self, graph, params, seed,
                     config: SystemConfig) -> LynchWelchSystem:
        return LynchWelchSystem(params, config=config, seed=seed,
                                cluster_graph=graph)

    def build_nodes(self, ctx: BuildContext) -> None:
        if ctx.graph is None:
            from repro.topology.cluster_graph import ClusterGraph

            ctx = replace(ctx, graph=ClusterGraph.line(1))
            self.ctx = ctx
        super().build_nodes(ctx)


@register_protocol
class MasterSlaveProtocol(SyncProtocol):
    """Tree-slaved master–slave synchronization (fault-free baseline).

    ``payload`` knobs (all :class:`MasterSlaveSystem` constructor
    kwargs): ``rounds`` (default ``ctx.rounds``), ``root``,
    ``chase_threshold``, ``rate_model``, ``flip_period_rounds``,
    ``cluster_offsets``, ``jump``, ``record_series``, ``track_edges``.

    Node churn is applied as *link silencing only*: a "crashed" slave
    keeps its clock and estimator state and simply stops hearing (and
    being heard); on rejoin it resumes chasing from wherever its coasted
    clock drifted to.  This is the weaker churn model — master–slave has
    no bring-up path to lose state through — and is documented as such
    in the capability table.
    """

    name = "master_slave"
    supports_faults = False
    supports_dynamic_topology = False
    supports_node_churn = True
    supports_first_contact = False
    supports_vectorized = False  # event-only; chasing is not a round

    def build_nodes(self, ctx: BuildContext) -> None:
        payload = dict(ctx.payload)
        self.rounds = payload.pop("rounds", ctx.rounds)
        self.system = MasterSlaveSystem(ctx.graph, ctx.params,
                                        seed=ctx.seed, **payload)
        self.sim = self.system.sim
        self.network = self.system.network

    def start(self) -> None:
        self.system.start()

    def horizon(self) -> float:
        return self.system.run_horizon(self.rounds)

    def advance(self, until: float) -> None:
        self.sim.run(until)
        self.system.sampler.sample_now()

    def collect(self) -> ProtocolRunResult:
        maxima = self.system.sampler.maxima
        series = self.system.sampler.series
        return ProtocolRunResult(
            protocol=self.name, seed=self.ctx.seed,
            max_global_skew=maxima.global_skew,
            max_local_skew=maxima.local_cluster,
            series=series,
            edge_maxima=dict(maxima.edge_maxima),
            messages_sent=self.network.messages_sent,
            messages_dropped=self.network.messages_dropped,
            events_processed=self.sim.events_processed,
            stabilization_time=(stabilization_time(
                [(s.time, s.max_local_cluster) for s in series])
                if series else None),
            **_fault_counters(self),
            detail=maxima)

    def edge_links(self, a: int, b: int) -> tuple:
        aug = self.system.aug
        return tuple((na, nb) for na in aug.members(a)
                     for nb in aug.members(b))

    def cluster_nodes(self, cluster: int) -> tuple:
        return self.system.aug.members(cluster)

    def apply_node_event(self, cluster, alive,
                         drop_in_flight: bool = False) -> None:
        self._apply_node_links(cluster, alive,
                               drop_in_flight=drop_in_flight)


@register_protocol
class GcsSingleProtocol(SyncProtocol):
    """The fault-INtolerant GCS baseline, one node per cluster vertex.

    ``payload``: ``params`` (a :class:`GcsParams`, required), ``until``
    (run horizon, required), ``liars`` (``{node: {neighbor: +-1}}``),
    ``rate_spread``, ``sample_interval``.  ``series``/``detail`` are
    the ``(t, local_skew, global_skew)`` sample list, with local skew
    measured over currently *active* correct edges.
    """

    name = "gcs_single"
    supports_faults = False  # liars ride the payload, not strategies
    supports_dynamic_topology = True
    supports_node_churn = True
    supports_first_contact = False  # single-node clusters: no estimators
    supports_vectorized = True
    supports_vectorized_faults = True
    needs_params = False

    def build_nodes(self, ctx: BuildContext) -> None:
        payload = dict(ctx.payload)
        try:
            gcs_params = payload.pop("params")
            self.until = payload.pop("until")
        except KeyError as missing:
            raise ConfigError(
                f"gcs_single needs payload[{missing.args[0]!r}]") from None
        self.sample_interval = payload.pop("sample_interval", None)
        model = _event_adversary(self, ctx)
        if model is not None:
            # Equivocation realized through the protocol's native
            # liars mechanism: the same strided placement the
            # vectorized runtime uses, each liar showing even-id
            # neighbors +amplitude and odd-id ones -amplitude
            # (bias=amplitude, no ramp).
            if payload.get("liars"):
                raise ConfigError(
                    "compose either payload liars or .adversary(...), "
                    "not both")
            n = ctx.graph.num_clusters
            amplitude = (model.amplitude if model.amplitude is not None
                         else 4.0 * gcs_params.kappa)
            count = (model.count if model.count is not None
                     else max(1, min(n - 1, n // 20)))
            liars = {}
            graph = ctx.graph
            for node in stride_placement(n, count).tolist():
                directions = {nb: (1 if nb % 2 == 0 else -1)
                              for nb in graph.neighbors(node)}
                liars[node] = directions
            payload["liars"] = liars
            payload["liar_bias"] = amplitude
            payload["liar_ramp"] = 0.0
            self.adversary_counters.update(count=len(liars),
                                           amplitude=amplitude)
        self.system = GcsSingleSystem(ctx.graph, gcs_params,
                                      seed=ctx.seed, **payload)
        self.sim = self.system.sim
        self.network = self.system.network

    def start(self) -> None:
        self.system.start()

    def horizon(self) -> float:
        return self.until

    def advance(self, until: float) -> None:
        self.samples = self.system.run(
            until, sample_interval=self.sample_interval)

    def collect(self) -> ProtocolRunResult:
        samples = self.samples
        return ProtocolRunResult(
            protocol=self.name, seed=self.ctx.seed,
            max_global_skew=max((s[2] for s in samples), default=0.0),
            max_local_skew=max((s[1] for s in samples), default=0.0),
            series=samples,
            messages_sent=self.network.messages_sent,
            messages_dropped=self.network.messages_dropped,
            events_processed=self.sim.events_processed,
            stabilization_time=(stabilization_time(
                [(t, local) for t, local, _ in samples])
                if samples else None),
            **_fault_counters(self),
            detail=samples)

    def apply_node_event(self, cluster, alive,
                         drop_in_flight: bool = False) -> None:
        # One node per vertex: the default cluster_nodes mapping holds.
        if alive:
            self._apply_node_links(cluster, True)
            self.system.rejoin_node(cluster)
        else:
            self._apply_node_links(cluster, False,
                                   drop_in_flight=drop_in_flight)
            self.system.crash_node(cluster)


@register_protocol
class SrikanthTouegProtocol(SyncProtocol):
    """Srikanth–Toueg propose-and-pull on a clique (topology-free).

    ``payload``: ``params`` (an :class:`StParams`, required; carries
    ``n`` so no graph is involved), ``rounds`` (default
    ``ctx.rounds``), ``silent_faults``, ``rate_spread``,
    ``sample_interval``.  The uniform skews both report the max
    observed clique skew (``detail`` holds the same float).
    """

    name = "srikanth_toueg"
    needs_graph = False
    needs_params = False
    supports_faults = False  # silent faults ride the payload f-bound
    supports_dynamic_topology = False  # clique broadcast has no topology
    supports_node_churn = False
    supports_first_contact = False
    supports_vectorized = True
    supports_vectorized_faults = True

    def build_nodes(self, ctx: BuildContext) -> None:
        payload = dict(ctx.payload)
        try:
            st_params = payload.pop("params")
        except KeyError:
            raise ConfigError(
                "srikanth_toueg needs payload['params']") from None
        model = _event_adversary(self, ctx)
        if model is not None:
            # Silence realized through the protocol's native
            # silent_faults mechanism (first ``count <= f`` members).
            if payload.get("silent_faults"):
                raise ConfigError(
                    "compose either payload silent_faults or "
                    ".adversary(...), not both")
            count = (model.count if model.count is not None
                     else max(st_params.f, 1))
            if count > st_params.f:
                raise ConfigError(
                    f"adversary count {count} exceeds the clique "
                    f"fault budget f={st_params.f}")
            payload["silent_faults"] = count
            self.adversary_counters.update(count=count)
        self.rounds = payload.pop("rounds", ctx.rounds)
        self.sample_interval = payload.pop("sample_interval", None)
        self.system = SrikanthTouegSystem(st_params, seed=ctx.seed,
                                          **payload)
        self.sim = self.system.sim
        self.network = self.system.network

    def start(self) -> None:
        self.system.start()

    def horizon(self) -> float:
        return (self.rounds + 1) * self.system.params.period

    def advance(self, until: float) -> None:
        self.skew = self.system.run_until(
            until, sample_interval=self.sample_interval)

    def collect(self) -> ProtocolRunResult:
        return ProtocolRunResult(
            protocol=self.name, seed=self.ctx.seed,
            max_global_skew=self.skew, max_local_skew=self.skew,
            messages_sent=self.network.messages_sent,
            messages_dropped=self.network.messages_dropped,
            events_processed=self.sim.events_processed,
            **_fault_counters(self),
            detail=self.skew)


__all__ = [
    "FtgcsProtocol",
    "GcsSingleProtocol",
    "LynchWelchProtocol",
    "MasterSlaveProtocol",
    "SrikanthTouegProtocol",
]
