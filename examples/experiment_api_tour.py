#!/usr/bin/env python3
"""Tour of the declarative experiment API (Scenario + registry).

Three layers, from highest to lowest:

1. ``run_experiment("tNN")`` — any published table, one call.
2. ``REGISTRY`` — metadata and grid sizes without running anything.
3. ``Scenario`` + ``SweepRunner`` — your own declarative grid of
   picklable cells, fanned across worker processes (``processes=`` or
   ``REPRO_SWEEP_PROCESSES``) with bit-identical results at any pool
   size.

Run:  python examples/experiment_api_tour.py
"""

from repro import REGISTRY, Scenario, SweepRunner, run_experiment
from repro.harness import default_params

# 1. Any published table, one call.  Every experiment accepts
#    quick/full, processes, and seed the same way.
table = run_experiment("t08", quick=True)
print(table.format())
print()

# 2. The registry is introspectable: ids, claims, grid sizes.
experiment = REGISTRY.get("t05")
cells = len(experiment.plan(quick=True, seed=experiment.default_seed).specs)
print(f"{experiment.id}: {experiment.claim.splitlines()[0]}")
print(f"quick grid: {cells} cells")
print()

# 3. A custom sweep: how does the steady local skew respond to the
#    initial inter-cluster gradient?  One immutable base scenario fans
#    out into a grid; the sweep engine runs the cells (in parallel if
#    asked) and hands back picklable measurements.
params = default_params(f=1)
base = (Scenario.line(3).params(params).rounds(12)
        .attack("equivocate"))
gradients = (0.5, 1.5, 2.5)
specs = [base.offsets([i * g * params.kappa for i in range(3)])
         .tag("gradient", g).build()
         for g in gradients]
cells = SweepRunner().run(specs, base_seed=17)

print("gradient (kappa/edge)  steady local skew  bound  holds")
violations = 0
for cell in cells:
    steady = cell.steady_state_skews()["local_cluster"]
    bound = cell.result.bounds.local_skew_bound
    ok = steady <= bound
    violations += 0 if ok else 1
    print(f"{cell.key[1]:>21}  {steady:>17.4f}  {bound:.4f}  {ok}")
print()
print("custom sweep: all bounds hold" if violations == 0
      else f"custom sweep: {violations} BOUND VIOLATIONS")
