#!/usr/bin/env python3
"""Tour of the declarative experiment API (Scenario + registry +
protocols).

Four layers, from highest to lowest:

1. ``run_experiment("tNN")`` — any published table, one call.
2. ``REGISTRY`` — metadata and grid sizes without running anything.
3. ``Scenario`` + ``SweepRunner`` — your own declarative grid of
   picklable cells, fanned across worker processes (``processes=`` or
   ``REPRO_SWEEP_PROCESSES``) with bit-identical results at any pool
   size.
4. ``SyncProtocol`` + ``SystemBuilder`` — the unified surface every
   algorithm implements; register your own protocol and it becomes
   addressable from Scenario grids like the built-ins.

Plus a tour of adversarial dynamic topologies: ``TIntervalSchedule``
(worst-case T-interval connectivity) with first-contact estimator
bring-up (``.first_contact()``) — and of deployment-grade fault
injection: lossy links (``.lossy(...)``) and crash-and-rejoin node
churn (``.churn_nodes(...)``) — and of the simulation service
(``repro.service``): async jobs over a content-addressed result
cache, where resubmitting an identical experiment is a disk read.

Run:  python examples/experiment_api_tour.py
"""

from repro import (
    REGISTRY,
    ProtocolRunResult,
    Scenario,
    SweepRunner,
    SyncProtocol,
    SystemBuilder,
    register_protocol,
    run_experiment,
)
from repro.harness import default_params

# 1. Any published table, one call.  Every experiment accepts
#    quick/full, processes, and seed the same way.
table = run_experiment("t08", quick=True)
print(table.format())
print()

# 2. The registry is introspectable: ids, claims, grid sizes.
experiment = REGISTRY.get("t05")
cells = len(experiment.plan(quick=True, seed=experiment.default_seed).specs)
print(f"{experiment.id}: {experiment.claim.splitlines()[0]}")
print(f"quick grid: {cells} cells")
print()

# 3. A custom sweep: how does the steady local skew respond to the
#    initial inter-cluster gradient?  One immutable base scenario fans
#    out into a grid; the sweep engine runs the cells (in parallel if
#    asked) and hands back picklable measurements.  Every simulation
#    cell runs through the generic "protocol" kind, so cell.result is
#    always a ProtocolRunResult (algorithm-native detail included).
params = default_params(f=1)
base = (Scenario.line(3).params(params).rounds(12)
        .attack("equivocate"))
gradients = (0.5, 1.5, 2.5)
specs = [base.offsets([i * g * params.kappa for i in range(3)])
         .tag("gradient", g).build()
         for g in gradients]
cells = SweepRunner().run(specs, base_seed=17)

print("gradient (kappa/edge)  steady local skew  bound  holds")
violations = 0
for cell in cells:
    steady = cell.steady_state_skews()["local_cluster"]
    bound = cell.result.detail.bounds.local_skew_bound
    ok = steady <= bound
    violations += 0 if ok else 1
    print(f"{cell.key[1]:>21}  {steady:>17.4f}  {bound:.4f}  {ok}")
print()
print("custom sweep: all bounds hold" if violations == 0
      else f"custom sweep: {violations} BOUND VIOLATIONS")
print()


# 4. A custom protocol.  Implement the SyncProtocol contract
#    (build_nodes / start / horizon / collect + capability flags),
#    register it, and it composes with topologies and rides Scenario
#    grids exactly like the built-ins.  This toy protocol does no
#    synchronization at all — free-running hardware clocks — so its
#    skew is the pure drift accumulation every real algorithm beats.
@register_protocol
class NoSyncProtocol(SyncProtocol):
    """Free-running clocks: a lower-bound baseline with no messages."""

    name = "no_sync"
    needs_params = False
    # Declare the full capability set explicitly — `repro lint`'s
    # contract pass flags protocols that silently inherit the
    # SyncProtocol defaults.
    supports_faults = False
    supports_dynamic_topology = False
    supports_node_churn = False
    supports_first_contact = False
    supports_vectorized = False

    def build_nodes(self, ctx):
        from repro.clocks.hardware import HardwareClock
        from repro.clocks.rate_models import ConstantRate
        from repro.net.network import Network
        from repro.sim.kernel import Simulator

        rho = ctx.payload.get("rho", 1e-4)
        self.until = ctx.payload.get("until", 100.0)
        self.sim = Simulator()
        self.network = Network(self.sim, d=1.0, u=0.1)
        self.clocks = []
        for cluster in range(ctx.graph.num_clusters):
            rate = 1.0 + rho * (cluster % 2)
            self.clocks.append(HardwareClock(
                self.sim, ConstantRate(rate), rho))

    def start(self):
        pass  # nothing to arm: clocks free-run

    def horizon(self):
        return self.until

    def collect(self):
        values = [clock.value() for clock in self.clocks]
        spread = max(values) - min(values)
        return ProtocolRunResult(
            protocol=self.name, seed=self.ctx.seed,
            max_global_skew=spread, max_local_skew=spread,
            events_processed=self.sim.events_processed, detail=values)


# Direct use through the builder...
result = (SystemBuilder("no_sync")
          .topology(__import__("repro").ClusterGraph.line(4))
          .payload(rho=1e-3, until=500.0).seed(1).build().run())
print(f"no_sync via SystemBuilder: global skew {result.max_global_skew:.3f} "
      f"after t=500 (rho=1e-3)")

# ...and through a Scenario grid (same worker path as t01-t15).
specs = [Scenario.line(4).protocol("no_sync")
         .payload(rho=rho, until=500.0).tag("rho", rho).build()
         for rho in (1e-4, 1e-3)]
for cell in SweepRunner().run(specs, base_seed=1):
    print(f"no_sync via Scenario grid: rho={cell.key[1]:g} -> "
          f"skew {cell.result.max_global_skew:.4f}")
print()


# 5. Adversarial dynamic topologies.  TIntervalSchedule is the
#    worst-case T-interval-connected adversary (Kuhn et al.): one
#    seeded random spanning tree survives per epoch of T intervals,
#    every other edge is down.  `.first_contact()` opts into dynamic
#    estimator state — estimators whose link is down at start stay
#    dormant, come up on first contact, and enter the trigger
#    aggregation only after one completed exchange (the warm-up rule).
params = default_params(f=1)
for T in (1, 4):
    cell = SweepRunner().run(
        [Scenario.ring(4).params(params).rounds(6)
         .dynamic("t_interval", interval=params.round_length, T=T)
         .first_contact().tag("T", T).build()],
        base_seed=21)[0]
    detail = cell.result.detail
    print(f"t_interval T={T}: local skew "
          f"{cell.result.max_local_skew:.4f}, "
          f"{detail.estimator_bring_ups} bring-ups, "
          f"{detail.estimator_resyncs} resyncs, "
          f"{cell.result.messages_dropped} drops on down edges")
print()


# 6. Fault injection.  The paper's model has reliable links and
#    permanently live nodes; `.lossy()` and `.churn_nodes()` break both
#    assumptions on purpose.  Loss draws come from a dedicated stream,
#    so a run with no loss model is byte-identical to one built before
#    the fault layer existed.  The uniform result carries the
#    accounting: messages_lost (the wire ate it), dropped_link_down
#    (sent into a deactivated link), node_crashes / node_rejoins.
params = default_params(f=1)
faulted = (Scenario.line(4).params(params).rounds(12)
           .lossy(kind="bernoulli", rate=0.1)
           .churn_nodes(interval=2 * params.round_length, crash=0.1,
                        rejoin=0.8)
           .first_contact())
clean = Scenario.line(4).params(params).rounds(12)
for label, scenario in (("reliable", clean), ("faulted", faulted)):
    cell = SweepRunner().run([scenario.tag(label).build()], base_seed=16)[0]
    r = cell.result
    print(f"{label:>8}: local skew {r.max_local_skew:.4f}, "
          f"{r.messages_lost} lost, {r.dropped_link_down} link-down, "
          f"{r.node_crashes} crashes, {r.node_rejoins} rejoins")


# 7. The simulation service.  JobManager + ResultStore are the
#    library half of `python -m repro serve`: submissions queue on
#    background workers, and every executed cell lands in a
#    content-addressed cache keyed by the canonical BLAKE2b hash of
#    its seed-resolved spec.  A cold submission executes the grid; an
#    identical resubmission decodes every cell from disk —
#    executed_cells stays 0 and the finished table is byte-identical
#    (the same guarantee the REST layer serves over HTTP).
import tempfile
import time

from repro.service import JobManager, ResultStore

with tempfile.TemporaryDirectory(prefix="repro-tour-cache-") as root:
    manager = JobManager(store=ResultStore(root))
    started = time.perf_counter()
    cold = manager.wait(manager.submit_experiment("t01").id,
                        timeout=300)
    print(f"service cold submit: {cold.executed_cells} executed / "
          f"{cold.cached_cells} cached "
          f"({time.perf_counter() - started:.2f}s)")
    started = time.perf_counter()
    warm = manager.wait(manager.submit_experiment("t01").id,
                        timeout=300)
    print(f"service resubmit: {warm.executed_cells} executed / "
          f"{warm.cached_cells} cached "
          f"({time.perf_counter() - started:.2f}s), bytes identical: "
          f"{warm.table.to_json() == cold.table.to_json()}")
    manager.shutdown()
