#!/usr/bin/env python3
"""The paper's motivating comparisons, reproduced in one script.

1. *Master–slave tree* (the "simplistic approach"): a skew wave
   injected at the root compresses the full global skew onto every
   interior edge — no non-trivial local skew bound.
2. *Fault-intolerant GCS* (Lenzen–Locher–Wattenhofer, one node per
   vertex): a single Byzantine liar makes the local skew between
   correct neighbors grow without bound.
3. *FTGCS* (this paper): same injections, bounded local skew.

Run:  python examples/baseline_comparison.py
"""

from repro import ClusterGraph, Parameters
from repro.baselines.gcs_single import GcsParams, GcsSingleSystem
from repro.baselines.master_slave import MasterSlaveSystem
from repro.core.system import FtgcsSystem, SystemConfig

params = Parameters.practical(rho=1e-4, d=1.0, u=0.05, f=0, eps=0.2,
                              k_stab=1)
n = 6
injected = 6.0 * params.kappa

print("=== 1. master-slave tree vs FTGCS: skew-wave compression ===")
offsets = [injected] + [0.0] * (n - 1)
ms = MasterSlaveSystem(ClusterGraph.line(n), params, seed=1, jump=True,
                       cluster_offsets=list(offsets), track_edges=True)
ms_maxima = ms.run_rounds(25)
ms_interior = max(s for e, s in ms_maxima.edge_maxima.items()
                  if 0 not in e)

ft = FtgcsSystem.build(
    ClusterGraph.line(n), params, seed=1,
    config=SystemConfig(cluster_offsets=list(offsets), track_edges=True))
ft_result = ft.run_rounds(25)
ft_interior = max(s for e, s in ft_result.edge_maxima.items()
                  if 0 not in e)

print(f"injected global skew at root : {injected:.2f}")
print(f"master-slave interior edges  : {ms_interior:.2f}  "
      f"(full compression — the [15] failure)")
print(f"FTGCS interior edges         : {ft_interior:.2f}  "
      f"(capped near 2*kappa = {2 * params.kappa:.2f})")

print()
print("=== 2. fault-intolerant GCS vs FTGCS: one Byzantine node ===")
gcs = GcsParams.default(rho=1e-4, d=1.0, u=0.1)
liar_system = GcsSingleSystem(ClusterGraph.ring(6), gcs, seed=2,
                              liars={0: {1: +1, 5: -1}})
samples = liar_system.run(until=8000.0)
quarter = len(samples) // 4
print("plain GCS local skew over correct edges (growing without bound):")
for i in range(0, len(samples), quarter):
    t, local, _global = samples[i]
    print(f"  t={t:7.0f}  local skew = {local:7.3f}")

params_ft = Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1)
from repro.faults import EquivocatorStrategy, place_in_clusters
aug = ClusterGraph.ring(6).augment(params_ft.cluster_size)
ft2 = FtgcsSystem.build(
    ClusterGraph.ring(6), params_ft, seed=2,
    config=SystemConfig(byzantine=place_in_clusters(
        aug, [0], 1, lambda nid: EquivocatorStrategy())))
r2 = ft2.run_rounds(12)
print(f"FTGCS under an equivocator   : local skew "
      f"{r2.max_local_cluster_skew:.3f} <= bound "
      f"{r2.bounds.local_skew_bound:.3f} -> {r2.within_local_cluster_bound}")
