#!/usr/bin/env python3
"""Run every Byzantine strategy against the same deployment.

A ring of 4 clusters, one faulty node per cluster, each strategy in
turn.  For each attack the script reports steady-state skews and
whether every bound held — the empirical content of Theorem 1.1's
"tolerates f Byzantine faults per cluster".

Run:  python examples/attack_gallery.py
"""

from repro import ClusterGraph
from repro.faults import (
    CrashStrategy,
    EquivocatorStrategy,
    FastClockStrategy,
    PullApartStrategy,
    RandomPulseStrategy,
    SilentStrategy,
)
from repro.harness.runner import default_params, run_scenario

params = default_params(f=1)
graph = ClusterGraph.ring(4)

strategies = [
    ("silent", lambda n: SilentStrategy()),
    ("crash @ 3T", lambda n: CrashStrategy(3 * params.round_length)),
    ("random pulses", lambda n: RandomPulseStrategy(pulses_per_round=4.0)),
    ("fast clock x1.5", lambda n: FastClockStrategy(1.5)),
    ("slow clock x0.7", lambda n: FastClockStrategy(0.7)),
    ("equivocator", lambda n: EquivocatorStrategy()),
    ("pull-apart", lambda n: PullApartStrategy()),
]

print(f"ring of 4 clusters, k={params.cluster_size}, f=1, "
      f"15 rounds per attack")
print()
print(f"{'attack':18s} {'intra':>8s} {'local':>8s} {'global':>8s} "
      f"{'missing':>8s} {'bounds':>7s}")
for name, factory in strategies:
    scenario = run_scenario(graph, params, rounds=15, seed=3,
                            strategy_factory=factory)
    result = scenario.result
    steady = scenario.steady_state_skews()
    print(f"{name:18s} {steady['intra']:8.3f} "
          f"{steady['local_cluster']:8.3f} {steady['global']:8.3f} "
          f"{result.missing_pulses:8d} "
          f"{'OK' if result.all_bounds_hold else 'FAIL':>7s}")

print()
print(f"bounds: intra <= {params.intra_skew_bound():.2f}, "
      f"local cluster <= O(kappa log S), kappa = {params.kappa:.2f}")
