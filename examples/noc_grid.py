#!/usr/bin/env python3
"""Network-on-Chip style scenario: a 4x4 grid of clock domains.

The paper's introduction motivates GCS with decentralized clocking for
Systems-on-Chip / Networks-on-Chip: neighboring tiles must stay tightly
aligned (local skew!) even though the chip is many hops wide.  This
example builds a 4x4 torus-less grid of clusters, injects crash *and*
equivocation faults in different tiles, and reports the skew metrics a
NoC designer would care about.

Run:  python examples/noc_grid.py
"""

from repro import ClusterGraph, Parameters
from repro.core.system import FtgcsSystem, SystemConfig
from repro.faults import CrashStrategy, EquivocatorStrategy, place_in_clusters

params = Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1)
graph = ClusterGraph.grid(4, 4)
augmented = graph.augment(params.cluster_size)

# Mixed faults: equivocators in two corner tiles, mid-run crashes along
# one row (stays within the f=1 per-cluster budget).
byzantine = {}
byzantine.update(place_in_clusters(
    augmented, [0, 15], 1, lambda n: EquivocatorStrategy()))
byzantine.update(place_in_clusters(
    augmented, [5, 6], 1,
    lambda n: CrashStrategy(crash_time=5 * params.round_length)))

system = FtgcsSystem.build(
    graph, params, seed=11,
    config=SystemConfig(byzantine=byzantine, record_series=True))
result = system.run_rounds(20)

print(f"4x4 grid ({augmented.num_nodes} nodes, "
      f"{augmented.num_edges} links), diameter {graph.diameter()}")
print(f"faults: equivocators in tiles 0 and 15, crashes in tiles 5, 6")
print()
print(f"{'metric':28s} {'measured':>10s} {'bound':>10s}")
rows = [
    ("neighbor-tile skew (local)", result.max_local_cluster_skew,
     result.bounds.local_skew_bound),
    ("intra-tile skew", result.max_intra_cluster_skew,
     result.bounds.intra_cluster_bound),
    ("chip-wide skew (global)", result.max_global_skew,
     result.bounds.global_skew_bound),
]
for name, measured, bound in rows:
    print(f"{name:28s} {measured:10.3f} {bound:10.3f}")
print()
print(f"messages per round per node ~ "
      f"{result.messages_sent / max(result.rounds_completed, 1) / augmented.num_nodes:.1f}")
print("all bounds hold:", result.all_bounds_hold)
