#!/usr/bin/env python3
"""A line network under sustained Byzantine equivocation.

Scenario: a line of 5 clusters (think: a chain of racks, or a long
System-on-Chip spine) with one *equivocating* Byzantine node per
cluster — the strongest pulse-level attack, sending early pulses to one
half of its neighbors and late pulses to the other.  On top, clusters
start with a skew gradient of ``1.5 kappa`` per hop.

The run prints the per-edge skew profile so you can see the gradient
the GCS layer maintains, and verifies every Theorem 1.1 bound.

Run:  python examples/byzantine_line.py
"""

from repro import ClusterGraph, Parameters
from repro.core.system import FtgcsSystem, SystemConfig
from repro.faults import EquivocatorStrategy, place_everywhere

params = Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1, eps=0.2,
                              k_stab=1)
num_clusters = 5
graph = ClusterGraph.line(num_clusters)
augmented = graph.augment(params.cluster_size)

byzantine = place_everywhere(augmented, 1,
                             lambda node_id: EquivocatorStrategy())
offsets = [i * 1.5 * params.kappa for i in range(num_clusters)]

config = SystemConfig(byzantine=byzantine, cluster_offsets=offsets,
                      record_series=True, track_edges=True)
system = FtgcsSystem.build(graph, params, seed=7, config=config)
result = system.run_rounds(30)

print(f"line of {num_clusters} clusters, k={params.cluster_size}, "
      f"one equivocator per cluster")
print(f"kappa = {params.kappa:.3f}, initial gradient = "
      f"{1.5 * params.kappa:.3f} per edge")
print()
print("per-edge max cluster skew (the gradient profile):")
for (a, b), skew in sorted(result.edge_maxima.items()):
    bar = "#" * int(40 * skew / max(result.edge_maxima.values()))
    print(f"  edge ({a},{b}): {skew:9.3f}  {bar}")
print()
print(f"max local cluster skew : {result.max_local_cluster_skew:.3f} "
      f"(bound {result.bounds.local_skew_bound:.3f})")
print(f"max intra-cluster skew : {result.max_intra_cluster_skew:.3f} "
      f"(bound {result.bounds.intra_cluster_bound:.3f})")
print(f"missing pulses         : {result.missing_pulses} "
      f"(substituted; Byzantine lies that fell outside the window)")
print(f"all bounds hold        : {result.all_bounds_hold}")
