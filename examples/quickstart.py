#!/usr/bin/env python3
"""Quickstart: fault-tolerant gradient clock synchronization in ~30 lines.

Builds a ring of 4 clusters (4 nodes each, tolerating 1 Byzantine node
per cluster), runs 15 rounds with one *silent* Byzantine node in every
cluster, and checks every skew metric against the paper's bounds.

Run:  python examples/quickstart.py
"""

from repro import ClusterGraph, Parameters
from repro.core.system import FtgcsSystem, SystemConfig
from repro.faults import SilentStrategy, place_everywhere

# 1. Model parameters: drift rho, max delay d, uncertainty U, faults f.
params = Parameters.practical(rho=1e-4, d=1.0, u=0.1, f=1)
print(params.summary())
print()

# 2. Topology: a ring of 4 clusters; the augmentation (cliques inside,
#    complete bipartite across edges) happens inside the system builder.
graph = ClusterGraph.ring(4)

# 3. Faults: one silent Byzantine node in every cluster (= the budget).
augmented = graph.augment(params.cluster_size)
byzantine = place_everywhere(augmented, 1, lambda node_id: SilentStrategy())

# 4. Build and run.
system = FtgcsSystem.build(graph, params, seed=42,
                           config=SystemConfig(byzantine=byzantine))
result = system.run_rounds(15)

# 5. Compare measurements against the paper's bounds.
print(f"rounds completed          : {result.rounds_completed}")
print(f"messages sent             : {result.messages_sent}")
print(f"intra-cluster skew        : {result.max_intra_cluster_skew:.4f}"
      f"  (bound {result.bounds.intra_cluster_bound:.4f})")
print(f"local cluster skew        : {result.max_local_cluster_skew:.4f}"
      f"  (bound {result.bounds.local_skew_bound:.4f})")
print(f"local node skew           : {result.max_local_node_skew:.4f}"
      f"  (bound {result.bounds.node_local_skew_bound:.4f})")
print(f"global skew               : {result.max_global_skew:.4f}"
      f"  (bound {result.bounds.global_skew_bound:.4f})")
print(f"estimate error            : {result.max_estimate_error:.4f}"
      f"  (bound {result.bounds.estimate_error_bound:.4f})")
print(f"missing pulses substituted: {result.missing_pulses}")
print()
print("all bounds hold" if result.all_bounds_hold
      else "BOUND VIOLATION — this should never happen")
